package eval

// The compiler: one pass over a normalized query lowers every expression
// into a chain of pre-resolved closures (compiled.go holds their runtime).
// The lowering rules, also documented in DESIGN.md:
//
//   - Variables resolve to frame slots at compile time; the per-candidate
//     context/frame allocations of the tree-walker disappear.
//   - Declared function calls bind to their compiled bodies at compile time.
//   - Constant subexpressions (literals and operator trees over them) fold
//     to their value; a folding *error* becomes a deferred-error closure so
//     a constant fault inside a never-taken branch still only surfaces if
//     that branch runs, exactly as in the tree-walker.
//   - Path steps compile to direct scans with predicates fused into the
//     scan; provably boolean-valued predicates (comparisons, logic, boolean
//     builtins) skip the numeric-position test entirely.
//   - Comparisons specialize by static operand kind: a constant operand is
//     atomized once at compile time.
//   - FLWOR spines compile to iterator pipelines mirroring the lazy
//     evaluator, including the >4-iteration invariant-hoisting heuristic.
//
// Anything outside the proven subset — constructors, remote calls, order-by
// loops, loops nested beyond maxCompiledForDepth — compiles to a fallback
// closure that rebuilds a tree-walker context from the frame and runs the
// interpreter for that node, so bytes cannot change.

import (
	"errors"
	"fmt"
	"strings"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// maxCompiledForDepth bounds the nesting depth of compiled FLWOR loops.
// Every loop compiles its body in up to four variants (eager/lazy ×
// plain/hoisted), so unbounded nesting would blow up compile time
// exponentially on adversarial (fuzzed) inputs; deeper loops fall back to
// the tree-walker for the whole node.
const maxCompiledForDepth = 6

// scope is the compile-time environment: a linked list of visible bindings,
// innermost first — the same shadowing order as the tree-walker's frame
// chain.
type scope struct {
	name string
	slot int
	next *scope
}

func (s *scope) lookup(name string) (int, bool) {
	for f := s; f != nil; f = f.next {
		if f.name == name {
			return f.slot, true
		}
	}
	return 0, false
}

// compiler holds per-query compilation state shared across function bodies.
type compiler struct {
	funcs map[string]*cfunc
	order []*cfunc
}

// fnCompiler allocates the slots of one compilation unit (the query body or
// one declared function).
type fnCompiler struct {
	cp       *compiler
	nslots   int
	forDepth int
}

func (fc *fnCompiler) alloc() int {
	n := fc.nslots
	fc.nslots++
	return n
}

func funcKey(name string, arity int) string {
	return fmt.Sprintf("%s/%d", name, arity)
}

var (
	trueSeq  = xdm.Singleton(xdm.NewBoolean(true))
	falseSeq = xdm.Singleton(xdm.NewBoolean(false))
)

func boolSeq(b bool) xdm.Sequence {
	if b {
		return trueSeq
	}
	return falseSeq
}

// CompileQuery lowers a query into a Program and caches it on the query, so
// every engine executing the same (shared, read-only) query object reuses
// one compilation. The query is normalized first; compilation itself cannot
// fail — unsupported shapes compile to tree-walker fallbacks.
func CompileQuery(q *xq.Query) (*Program, error) {
	if err := xq.Normalize(q); err != nil {
		return nil, err
	}
	if p, ok := q.CompiledArtifact().(*Program); ok {
		return p, nil
	}
	cp := &compiler{funcs: map[string]*cfunc{}}
	// Pre-register every declared function so recursive and mutually
	// recursive bodies resolve their callees to the final cfunc pointers.
	for _, fd := range q.Funcs {
		cf := &cfunc{decl: fd}
		cp.funcs[funcKey(fd.Name, len(fd.Params))] = cf
		cp.order = append(cp.order, cf)
	}
	for _, cf := range cp.order {
		fc := &fnCompiler{cp: cp}
		var sc *scope
		for _, p := range cf.decl.Params {
			sc = &scope{name: p.Name, slot: fc.alloc(), next: sc}
		}
		cf.body = fc.compile(cf.decl.Body, sc)
		cf.bodySeq = fc.compileSeq(cf.decl.Body, sc)
		cf.nslots = fc.nslots
	}
	fc := &fnCompiler{cp: cp}
	p := &Program{order: cp.order, funcs: cp.funcs}
	p.body = fc.compile(q.Body, nil)
	p.bodySeq = fc.compileSeq(q.Body, nil)
	p.nslots = fc.nslots
	q.SetCompiledArtifact(p)
	return p, nil
}

// fallback compiles e to a closure that rebuilds a tree-walker context from
// the frame (slot values become a frame chain, the focus carries over) and
// runs the interpreter on the node — the escape hatch for everything outside
// the compiled subset.
func (fc *fnCompiler) fallback(e xq.Expr, sc *scope) cexpr {
	return func(f *cframe) (xdm.Sequence, error) {
		return f.treeContext(sc).eval(e)
	}
}

func constc(s xdm.Sequence) cexpr {
	return func(f *cframe) (xdm.Sequence, error) {
		if err := f.ctx.stop.check(); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func errc(err error) cexpr {
	return func(f *cframe) (xdm.Sequence, error) {
		if e := f.ctx.stop.check(); e != nil {
			return nil, e
		}
		return nil, err
	}
}

// foldEval evaluates a constant expression at compile time on a bare
// context. isConst guarantees the expression touches no engine, documents,
// focus or variables, so the result is context-independent.
func foldEval(e xq.Expr) (xdm.Sequence, error) {
	return (&context{}).eval(e)
}

// isConst reports whether e is a constant subexpression the folder may
// evaluate at compile time: literal operator trees and the nullary
// true()/false() builtins (unless shadowed by a declared function). Node
// comparisons are excluded — their operands cannot be constant anyway — and
// so is everything touching documents, construction, focus or variables.
func (fc *fnCompiler) isConst(e xq.Expr) bool {
	switch v := e.(type) {
	case *xq.Literal:
		return true
	case *xq.SeqExpr, *xq.UnaryExpr, *xq.ArithExpr, *xq.LogicExpr:
		for _, ch := range xq.Children(e) {
			if !fc.isConst(ch) {
				return false
			}
		}
		return true
	case *xq.CompareExpr:
		if v.Op.IsNodeComp() {
			return false
		}
		return fc.isConst(v.Left) && fc.isConst(v.Right)
	case *xq.FunCall:
		if len(v.Args) != 0 {
			return false
		}
		switch strings.TrimPrefix(v.Name, "fn:") {
		case "true", "false":
		default:
			return false
		}
		_, declared := fc.cp.funcs[funcKey(v.Name, 0)]
		return !declared
	}
	return false
}

// compile lowers one expression to its eager compiled form. Every returned
// closure begins with the shared deadline check — the compiled equivalent of
// the check at the top of context.eval — so compiled code hits stopCheck at
// the same ≤stopCheckEvery-node granularity as the tree-walker.
func (fc *fnCompiler) compile(e xq.Expr, sc *scope) cexpr {
	if e != nil && fc.isConst(e) {
		s, err := foldEval(e)
		if err != nil {
			return errc(err)
		}
		return constc(s)
	}
	switch v := e.(type) {
	case nil:
		return constc(xdm.EmptySequence)
	case *xq.Literal:
		return constc(xdm.Singleton(v.Val))
	case *xq.VarRef:
		if slot, ok := sc.lookup(v.Name); ok {
			return func(f *cframe) (xdm.Sequence, error) {
				if err := f.ctx.stop.check(); err != nil {
					return nil, err
				}
				return f.slots[slot], nil
			}
		}
		return errc(fmt.Errorf("eval: unbound variable $%s", v.Name))
	case *xq.ContextItem:
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			if f.item == nil {
				return nil, fmt.Errorf("eval: context item is undefined")
			}
			return xdm.Singleton(f.item), nil
		}
	case *xq.RootExpr:
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			n, ok := f.item.(*xdm.Node)
			if !ok {
				return nil, fmt.Errorf("eval: '/' requires a node context item")
			}
			return xdm.Singleton(n.RootNode()), nil
		}
	case *xq.SeqExpr:
		parts := make([]cexpr, len(v.Items))
		for i, it := range v.Items {
			parts[i] = fc.compile(it, sc)
		}
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			out := xdm.Sequence{}
			for _, part := range parts {
				s, err := part(f)
				if err != nil {
					return nil, err
				}
				out = append(out, s...)
			}
			return out, nil
		}
	case *xq.LetExpr:
		bind := fc.compile(v.Bind, sc)
		slot := fc.alloc()
		body := fc.compile(v.Return, &scope{name: v.Var, slot: slot, next: sc})
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			s, err := bind(f)
			if err != nil {
				return nil, err
			}
			f.slots[slot] = s
			return body(f)
		}
	case *xq.IfExpr:
		cond := fc.compileCond(v.Cond, sc, "eval: invalid effective boolean value in if condition")
		then := fc.compile(v.Then, sc)
		els := fc.compile(v.Else, sc)
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			b, err := cond(f)
			if err != nil {
				return nil, err
			}
			if b {
				return then(f)
			}
			return els(f)
		}
	case *xq.ForExpr:
		return fc.compileFor(v, sc)
	case *xq.QuantifiedExpr:
		in := fc.compile(v.In, sc)
		slot := fc.alloc()
		sat := fc.compile(v.Satisfies, &scope{name: v.Var, slot: slot, next: sc})
		every := v.Every
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			s, err := in(f)
			if err != nil {
				return nil, err
			}
			for _, it := range s {
				f.slots[slot] = xdm.Singleton(it)
				r, err := sat(f)
				if err != nil {
					return nil, err
				}
				b, ok := r.EffectiveBoolean()
				if !ok {
					return nil, fmt.Errorf("eval: invalid effective boolean in quantified expression")
				}
				if every && !b {
					return boolSeq(false), nil
				}
				if !every && b {
					return boolSeq(true), nil
				}
			}
			return boolSeq(every), nil
		}
	case *xq.TypeswitchExpr:
		return fc.compileTypeswitch(v, sc)
	case *xq.LogicExpr:
		cb := fc.compileBool(e, sc)
		return func(f *cframe) (xdm.Sequence, error) {
			b, err := cb(f)
			if err != nil {
				return nil, err
			}
			return boolSeq(b), nil
		}
	case *xq.CompareExpr:
		if v.Op.IsNodeComp() {
			l := fc.compile(v.Left, sc)
			r := fc.compile(v.Right, sc)
			op := v.Op
			return func(f *cframe) (xdm.Sequence, error) {
				if err := f.ctx.stop.check(); err != nil {
					return nil, err
				}
				ls, err := l(f)
				if err != nil {
					return nil, err
				}
				rs, err := r(f)
				if err != nil {
					return nil, err
				}
				return nodeCompare(op, ls, rs)
			}
		}
		cb := fc.compileGeneralCompare(v, sc)
		return func(f *cframe) (xdm.Sequence, error) {
			b, err := cb(f)
			if err != nil {
				return nil, err
			}
			return boolSeq(b), nil
		}
	case *xq.ArithExpr:
		l := fc.compile(v.Left, sc)
		r := fc.compile(v.Right, sc)
		op := v.Op
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			ls, err := l(f)
			if err != nil {
				return nil, err
			}
			rs, err := r(f)
			if err != nil {
				return nil, err
			}
			return arithCombine(op, ls.Atomize(), rs.Atomize())
		}
	case *xq.UnaryExpr:
		operand := fc.compile(v.Operand, sc)
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			s, err := operand(f)
			if err != nil {
				return nil, err
			}
			atoms := s.Atomize()
			if len(atoms) == 0 {
				return xdm.EmptySequence, nil
			}
			if len(atoms) != 1 {
				return nil, fmt.Errorf("eval: unary minus over a sequence")
			}
			a := atoms[0]
			if a.T == xdm.TInteger {
				return xdm.Singleton(xdm.NewInteger(-a.I)), nil
			}
			return xdm.Singleton(xdm.NewDouble(-a.Number())), nil
		}
	case *xq.NodeSetExpr:
		l := fc.compile(v.Left, sc)
		r := fc.compile(v.Right, sc)
		op := v.Op
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			ls, err := l(f)
			if err != nil {
				return nil, err
			}
			rs, err := r(f)
			if err != nil {
				return nil, err
			}
			return nodeSetCombine(op, ls, rs)
		}
	case *xq.PathExpr:
		input, steps := fc.compilePathParts(v, sc)
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			return f.runPath(input, steps)
		}
	case *xq.FunCall:
		return fc.compileFunCall(v, sc)
	default:
		// Constructors, XRPC/execute-at, and anything the compiler does not
		// know stay on the tree-walker.
		return fc.fallback(e, sc)
	}
}

// compileFor lowers a FLWOR loop. Order-by loops and loops nested beyond the
// depth cap fall back whole. Loops whose body is a remote call decide at
// *runtime* whether a remote caller is configured — the same Program may run
// on originator engines (bulk/scatter dispatch, handled by the tree-walk
// fallback) and on engines without a caller (the compiled loop runs and the
// body's execute-at faults exactly as interpreted code would).
func (fc *fnCompiler) compileFor(v *xq.ForExpr, sc *scope) cexpr {
	if len(v.OrderBy) > 0 || fc.forDepth >= maxCompiledForDepth {
		return fc.fallback(v, sc)
	}
	var fb cexpr
	if _, isRPC := v.Return.(*xq.XRPCExpr); isRPC {
		fb = fc.fallback(v, sc)
	}
	fc.forDepth++
	in := fc.compile(v.In, sc)
	slot := fc.alloc()
	plain := fc.compile(v.Return, &scope{name: v.Var, slot: slot, next: sc})
	// The hoisted variant replays the tree-walker's loop-invariant hoisting:
	// chosen at runtime when the loop is long enough (>4 iterations), with
	// the bindings evaluated eagerly in order — even when the hoisted operand
	// sits in a branch this execution never takes, because that is what the
	// interpreter does.
	var hoisted cexpr
	var hoistBinds []cexpr
	var hoistSlots []int
	if hBody, bindings := hoistInvariantOperands(v.Return, v.Var); len(bindings) > 0 {
		hsc := sc
		for _, b := range bindings {
			s := fc.alloc()
			hoistBinds = append(hoistBinds, fc.compile(b.expr, sc))
			hoistSlots = append(hoistSlots, s)
			hsc = &scope{name: b.name, slot: s, next: hsc}
		}
		hoisted = fc.compile(hBody, &scope{name: v.Var, slot: slot, next: hsc})
	}
	fc.forDepth--
	return func(f *cframe) (xdm.Sequence, error) {
		if fb != nil && f.ctx.eng.Remote != nil {
			return fb(f)
		}
		if err := f.ctx.stop.check(); err != nil {
			return nil, err
		}
		s, err := in(f)
		if err != nil {
			return nil, err
		}
		body := plain
		if hoisted != nil && len(s) > 4 {
			for i, hb := range hoistBinds {
				val, err := hb(f)
				if err != nil {
					return nil, err
				}
				f.slots[hoistSlots[i]] = val
			}
			body = hoisted
		}
		out := xdm.Sequence{}
		for _, it := range s {
			f.slots[slot] = xdm.Singleton(it)
			r, err := body(f)
			if err != nil {
				return nil, err
			}
			out = append(out, r...)
		}
		return out, nil
	}
}

func (fc *fnCompiler) compileTypeswitch(v *xq.TypeswitchExpr, sc *scope) cexpr {
	op := fc.compile(v.Operand, sc)
	type tcase struct {
		typ    xq.SeqType
		slot   int
		hasVar bool
		ret    cexpr
	}
	cases := make([]tcase, len(v.Cases))
	for i, cs := range v.Cases {
		tc := tcase{typ: cs.Type}
		csc := sc
		if cs.Var != "" {
			tc.hasVar = true
			tc.slot = fc.alloc()
			csc = &scope{name: cs.Var, slot: tc.slot, next: sc}
		}
		tc.ret = fc.compile(cs.Return, csc)
		cases[i] = tc
	}
	defHasVar := false
	defSlot := 0
	dsc := sc
	if v.DefaultVar != "" {
		defHasVar = true
		defSlot = fc.alloc()
		dsc = &scope{name: v.DefaultVar, slot: defSlot, next: sc}
	}
	def := fc.compile(v.Default, dsc)
	return func(f *cframe) (xdm.Sequence, error) {
		if err := f.ctx.stop.check(); err != nil {
			return nil, err
		}
		s, err := op(f)
		if err != nil {
			return nil, err
		}
		for _, tc := range cases {
			if checkSeqType(s, tc.typ) == nil {
				if tc.hasVar {
					f.slots[tc.slot] = s
				}
				return tc.ret(f)
			}
		}
		if defHasVar {
			f.slots[defSlot] = s
		}
		return def(f)
	}
}

// compileFunCall lowers a function call. Argument evaluation always comes
// first — the tree-walker evaluates arguments before resolving the callee,
// so argument faults must win over unknown-function and arity faults.
func (fc *fnCompiler) compileFunCall(v *xq.FunCall, sc *scope) cexpr {
	argExprs := make([]cexpr, len(v.Args))
	for i, a := range v.Args {
		argExprs[i] = fc.compile(a, sc)
	}
	evalArgs := func(f *cframe) ([]xdm.Sequence, error) {
		args := make([]xdm.Sequence, len(argExprs))
		for i, ae := range argExprs {
			s, err := ae(f)
			if err != nil {
				return nil, err
			}
			args[i] = s
		}
		return args, nil
	}
	name := v.Name
	nargs := len(v.Args)
	if cf, ok := fc.cp.funcs[funcKey(name, nargs)]; ok {
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			args, err := evalArgs(f)
			if err != nil {
				return nil, err
			}
			return cf.call(f.ctx, args)
		}
	}
	short := strings.TrimPrefix(name, "fn:")
	bi, ok := builtins[short]
	if !ok {
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			if _, err := evalArgs(f); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("eval: unknown function %s#%d", name, nargs)
		}
	}
	if bi.minArgs > nargs || (bi.maxArgs >= 0 && nargs > bi.maxArgs) {
		minA, maxA := bi.minArgs, bi.maxArgs
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			if _, err := evalArgs(f); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("eval: %s expects %d..%d arguments, got %d", name, minA, maxA, nargs)
		}
	}
	switch short {
	case "position":
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			if f.pos == 0 {
				return nil, fmt.Errorf("eval: position() outside a predicate")
			}
			return xdm.Singleton(xdm.NewInteger(int64(f.pos))), nil
		}
	case "last":
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			if f.size == 0 {
				return nil, fmt.Errorf("eval: last() outside a predicate")
			}
			return xdm.Singleton(xdm.NewInteger(int64(f.size))), nil
		}
	case "root", "id", "idref":
		// The only remaining builtins that read the dynamic focus: give them
		// a context carrying the frame's.
		fn := bi.fn
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			args, err := evalArgs(f)
			if err != nil {
				return nil, err
			}
			return fn(f.ctx.withItem(f.item, f.pos, f.size), args)
		}
	default:
		fn := bi.fn
		return func(f *cframe) (xdm.Sequence, error) {
			if err := f.ctx.stop.check(); err != nil {
				return nil, err
			}
			args, err := evalArgs(f)
			if err != nil {
				return nil, err
			}
			return fn(f.ctx, args)
		}
	}
}

// compilePathParts lowers a path's input and steps; shared between the eager
// and streaming path forms.
func (fc *fnCompiler) compilePathParts(v *xq.PathExpr, sc *scope) (cexpr, []*cstep) {
	var input cexpr
	if v.Input != nil {
		input = fc.compile(v.Input, sc)
	}
	steps := make([]*cstep, len(v.Steps))
	for i, st := range v.Steps {
		cs := &cstep{axis: st.Axis, test: st.Test, filter: st.Filter, streamable: stepStreamable(st)}
		for _, p := range st.Preds {
			pred := cpred{b: fc.compileBool(p, sc)}
			if pred.b == nil {
				pred.gen = fc.compile(p, sc)
			}
			cs.preds = append(cs.preds, pred)
		}
		steps[i] = cs
	}
	return input, steps
}

// compileBool lowers an expression to its boolean fast path when its value
// is provably a boolean singleton — general comparisons, logic, quantifiers
// and boolean-valued builtins (unless shadowed by a declared function).
// Returns nil otherwise. Provably-boolean predicates fuse into path scans
// without the numeric-position test, which a boolean value can never trigger.
func (fc *fnCompiler) compileBool(e xq.Expr, sc *scope) cbool {
	switch v := e.(type) {
	case *xq.CompareExpr:
		// Node comparisons are not boolean-valued: an empty operand yields
		// the empty sequence.
		if v.Op.IsNodeComp() {
			return nil
		}
		return fc.compileGeneralCompare(v, sc)
	case *xq.LogicExpr:
		l := fc.compileCond(v.Left, sc, "eval: invalid effective boolean value")
		r := fc.compileCond(v.Right, sc, "eval: invalid effective boolean value")
		and := v.And
		return func(f *cframe) (bool, error) {
			if err := f.ctx.stop.check(); err != nil {
				return false, err
			}
			lb, err := l(f)
			if err != nil {
				return false, err
			}
			if and && !lb {
				return false, nil
			}
			if !and && lb {
				return true, nil
			}
			return r(f)
		}
	case *xq.QuantifiedExpr:
		// Always a boolean singleton; wrap the compiled form below.
	case *xq.FunCall:
		if _, declared := fc.cp.funcs[funcKey(v.Name, len(v.Args))]; declared {
			return nil
		}
		short := strings.TrimPrefix(v.Name, "fn:")
		switch short {
		case "not", "exists", "empty", "boolean", "true", "false",
			"contains", "starts-with", "deep-equal":
		default:
			return nil
		}
		bi := builtins[short]
		if bi.minArgs > len(v.Args) || (bi.maxArgs >= 0 && len(v.Args) > bi.maxArgs) {
			return nil // arity fault: keep the general path's error
		}
	default:
		return nil
	}
	ce := fc.compile(e, sc)
	return func(f *cframe) (bool, error) {
		s, err := ce(f)
		if err != nil {
			return false, err
		}
		b, _ := s.EffectiveBoolean() // boolean singleton by construction
		return b, nil
	}
}

// compileCond lowers a condition to effective-boolean-value form, using the
// boolean fast path when available and msg as the invalid-EBV fault.
func (fc *fnCompiler) compileCond(e xq.Expr, sc *scope, msg string) cbool {
	if cb := fc.compileBool(e, sc); cb != nil {
		return cb
	}
	ce := fc.compile(e, sc)
	return func(f *cframe) (bool, error) {
		s, err := ce(f)
		if err != nil {
			return false, err
		}
		b, ok := s.EffectiveBoolean()
		if !ok {
			return false, errors.New(msg)
		}
		return b, nil
	}
}

// compileGeneralCompare lowers a general comparison to a boolean closure,
// specializing by static operand kind: a constant operand atomizes once at
// compile time instead of per evaluation, and a constant side against a
// predicate-free downward relative path streams the scan — each reached node
// atomizes and compares in place, exiting on the first satisfying pair,
// with no candidate list, result sequence or atom slice ever built. The
// streaming form is observationally identical to materialize-then-compare
// because generalCompareAtoms never errors (incomparable pairs contribute
// false), so pair order and duplicates are invisible; only existence counts.
func (fc *fnCompiler) compileGeneralCompare(v *xq.CompareExpr, sc *scope) cbool {
	op := v.Op
	var l, r cexpr
	var lc, rc []xdm.Atomic
	lConst, rConst := false, false
	if fc.isConst(v.Left) {
		if s, err := foldEval(v.Left); err == nil {
			lc, lConst = s.Atomize(), true
		}
	}
	if !lConst {
		l = fc.compile(v.Left, sc)
	}
	if fc.isConst(v.Right) {
		if s, err := foldEval(v.Right); err == nil {
			rc, rConst = s.Atomize(), true
		}
	}
	if !rConst {
		r = fc.compile(v.Right, sc)
	}
	if path, constLeft, ok := existsComparePath(v, lConst, rConst); ok {
		ca := rc
		if constLeft {
			ca = lc
		}
		steps := path.Steps
		first := steps[0]
		return func(f *cframe) (bool, error) {
			if err := f.ctx.stop.check(); err != nil {
				return false, err
			}
			if f.item == nil {
				return false, fmt.Errorf("eval: relative path with undefined context item")
			}
			n, isNode := f.item.(*xdm.Node)
			if !isNode {
				return false, fmt.Errorf("eval: path step %s::%s applied to atomic value", first.Axis, first.Test)
			}
			return f.existsCompare(n, steps, op, ca, constLeft)
		}
	}
	return func(f *cframe) (bool, error) {
		if err := f.ctx.stop.check(); err != nil {
			return false, err
		}
		la := lc
		if !lConst {
			ls, err := l(f)
			if err != nil {
				return false, err
			}
			la = ls.Atomize()
		}
		ra := rc
		if !rConst {
			rs, err := r(f)
			if err != nil {
				return false, err
			}
			ra = rs.Atomize()
		}
		return generalCompareAtoms(op, la, ra), nil
	}
}

// existsComparePath picks out the streamable comparison shape: exactly one
// constant operand, the other a relative predicate-free chain of downward
// steps. constLeft reports which side the constant is on (pair order feeds
// CompareAtomics' asymmetric promotion rules).
func existsComparePath(v *xq.CompareExpr, lConst, rConst bool) (p *xq.PathExpr, constLeft, ok bool) {
	if rConst && !lConst {
		if p, ok := v.Left.(*xq.PathExpr); ok && simpleDownwardPath(p) {
			return p, false, true
		}
	}
	if lConst && !rConst {
		if p, ok := v.Right.(*xq.PathExpr); ok && simpleDownwardPath(p) {
			return p, true, true
		}
	}
	return nil, false, false
}

// simpleDownwardPath reports whether p is a relative, predicate-free chain of
// downward (or self) steps — the shape whose node set can stream without
// materialization, dedup or document-order sorting mattering to existence.
func simpleDownwardPath(p *xq.PathExpr) bool {
	if p.Input != nil || len(p.Steps) == 0 {
		return false
	}
	for _, st := range p.Steps {
		if st.Filter || len(st.Preds) > 0 {
			return false
		}
		switch st.Axis {
		case xq.AxisChild, xq.AxisAttribute, xq.AxisSelf,
			xq.AxisDescendant, xq.AxisDescendantOrSelf:
		default:
			return false
		}
	}
	return true
}

// replaySeq adapts an eager compiled expression to the lazy interface:
// nothing runs until the first pull, then the result materializes and
// replays — the compiled deferEval.
func replaySeq(ce cexpr) cseq {
	return func(f *cframe) xdm.Seq {
		return func(yield func(xdm.Item) bool) error {
			s, err := ce(f)
			if err != nil {
				return err
			}
			for _, it := range s {
				if !yield(it) {
					return nil
				}
			}
			return nil
		}
	}
}

// compileSeq lowers one expression to its lazy compiled form — the compiled
// twin of context.evalSeq, case for case: the same expressions stream, and
// everything else replays its eager form.
func (fc *fnCompiler) compileSeq(e xq.Expr, sc *scope) cseq {
	switch v := e.(type) {
	case nil:
		return func(*cframe) xdm.Seq { return xdm.EmptySeq() }
	case *xq.SeqExpr:
		parts := make([]cseq, len(v.Items))
		for i, it := range v.Items {
			parts[i] = fc.compileSeq(it, sc)
		}
		return func(f *cframe) xdm.Seq {
			return func(yield func(xdm.Item) bool) error {
				if err := f.ctx.stop.check(); err != nil {
					return err
				}
				stopped := false
				for _, part := range parts {
					err := part(f)(func(it xdm.Item) bool {
						if !yield(it) {
							stopped = true
							return false
						}
						return true
					})
					if err != nil {
						return err
					}
					if stopped {
						return nil
					}
				}
				return nil
			}
		}
	case *xq.LetExpr:
		bind := fc.compile(v.Bind, sc)
		slot := fc.alloc()
		body := fc.compileSeq(v.Return, &scope{name: v.Var, slot: slot, next: sc})
		return func(f *cframe) xdm.Seq {
			return func(yield func(xdm.Item) bool) error {
				if err := f.ctx.stop.check(); err != nil {
					return err
				}
				s, err := bind(f)
				if err != nil {
					return err
				}
				f.slots[slot] = s
				return body(f)(yield)
			}
		}
	case *xq.IfExpr:
		cond := fc.compileCond(v.Cond, sc, "eval: invalid effective boolean value in if condition")
		then := fc.compileSeq(v.Then, sc)
		els := fc.compileSeq(v.Else, sc)
		return func(f *cframe) xdm.Seq {
			return func(yield func(xdm.Item) bool) error {
				if err := f.ctx.stop.check(); err != nil {
					return err
				}
				b, err := cond(f)
				if err != nil {
					return err
				}
				if b {
					return then(f)(yield)
				}
				return els(f)(yield)
			}
		}
	case *xq.TypeswitchExpr:
		return fc.compileTypeswitchSeq(v, sc)
	case *xq.ForExpr:
		return fc.compileForSeq(v, sc)
	case *xq.PathExpr:
		n := len(v.Steps)
		if n == 0 || !stepStreamable(v.Steps[n-1]) {
			return replaySeq(fc.compile(e, sc))
		}
		input, steps := fc.compilePathParts(v, sc)
		head, last := steps[:n-1], steps[n-1]
		return func(f *cframe) xdm.Seq {
			return func(yield func(xdm.Item) bool) error {
				if err := f.ctx.stop.check(); err != nil {
					return err
				}
				cur, err := f.runPath(input, head)
				if err != nil {
					return err
				}
				if last.filter {
					return f.streamFilterItems(cur, last.preds, yield)
				}
				nodes, ok := cur.Nodes()
				if !ok {
					return fmt.Errorf("eval: path step %s::%s applied to atomic value", last.axis, last.test)
				}
				if len(nodes) > 1 && !xdm.OrderedDisjointNodes(nodes) {
					gathered, err := f.runStep(nodes, last, nil)
					if err != nil {
						return err
					}
					for _, m := range gathered {
						if !yield(m) {
							return nil
						}
					}
					return nil
				}
				return f.streamCompiledStep(nodes, last, yield)
			}
		}
	default:
		return replaySeq(fc.compile(e, sc))
	}
}

func (fc *fnCompiler) compileTypeswitchSeq(v *xq.TypeswitchExpr, sc *scope) cseq {
	op := fc.compile(v.Operand, sc)
	type tcase struct {
		typ    xq.SeqType
		slot   int
		hasVar bool
		ret    cseq
	}
	cases := make([]tcase, len(v.Cases))
	for i, cs := range v.Cases {
		tc := tcase{typ: cs.Type}
		csc := sc
		if cs.Var != "" {
			tc.hasVar = true
			tc.slot = fc.alloc()
			csc = &scope{name: cs.Var, slot: tc.slot, next: sc}
		}
		tc.ret = fc.compileSeq(cs.Return, csc)
		cases[i] = tc
	}
	defHasVar := false
	defSlot := 0
	dsc := sc
	if v.DefaultVar != "" {
		defHasVar = true
		defSlot = fc.alloc()
		dsc = &scope{name: v.DefaultVar, slot: defSlot, next: sc}
	}
	def := fc.compileSeq(v.Default, dsc)
	return func(f *cframe) xdm.Seq {
		return func(yield func(xdm.Item) bool) error {
			if err := f.ctx.stop.check(); err != nil {
				return err
			}
			s, err := op(f)
			if err != nil {
				return err
			}
			for _, tc := range cases {
				if checkSeqType(s, tc.typ) == nil {
					if tc.hasVar {
						f.slots[tc.slot] = s
					}
					return tc.ret(f)(yield)
				}
			}
			if defHasVar {
				f.slots[defSlot] = s
			}
			return def(f)(yield)
		}
	}
}

// compileForSeq lowers a FLWOR loop to the streaming pipeline of forSeq:
// each iteration's body items are yielded before the next input item is
// pulled, the first four inputs are buffered until the hoisting heuristic
// decides, and the remote special cases defer to the eager evaluator at
// runtime exactly as evalSeq does.
func (fc *fnCompiler) compileForSeq(v *xq.ForExpr, sc *scope) cseq {
	if len(v.OrderBy) > 0 || fc.forDepth >= maxCompiledForDepth {
		return replaySeq(fc.fallback(v, sc))
	}
	var fb cexpr
	if _, isRPC := v.Return.(*xq.XRPCExpr); isRPC {
		fb = fc.fallback(v, sc)
	}
	fc.forDepth++
	in := fc.compileSeq(v.In, sc)
	slot := fc.alloc()
	plain := fc.compileSeq(v.Return, &scope{name: v.Var, slot: slot, next: sc})
	var hoistedBody cseq
	var hoistBinds []cexpr
	var hoistSlots []int
	if hBody, bindings := hoistInvariantOperands(v.Return, v.Var); len(bindings) > 0 {
		hsc := sc
		for _, b := range bindings {
			s := fc.alloc()
			hoistBinds = append(hoistBinds, fc.compile(b.expr, sc))
			hoistSlots = append(hoistSlots, s)
			hsc = &scope{name: b.name, slot: s, next: hsc}
		}
		hoistedBody = fc.compileSeq(hBody, &scope{name: v.Var, slot: slot, next: hsc})
	}
	fc.forDepth--
	return func(f *cframe) xdm.Seq {
		return func(yield func(xdm.Item) bool) error {
			if fb != nil && f.ctx.eng.Remote != nil {
				s, err := fb(f)
				if err != nil {
					return err
				}
				for _, it := range s {
					if !yield(it) {
						return nil
					}
				}
				return nil
			}
			if err := f.ctx.stop.check(); err != nil {
				return err
			}
			body := plain
			runBody := func(it xdm.Item) (bool, error) {
				f.slots[slot] = xdm.Singleton(it)
				stopped := false
				err := body(f)(func(x xdm.Item) bool {
					if !yield(x) {
						stopped = true
						return false
					}
					return true
				})
				return !stopped, err
			}
			var buf xdm.Sequence
			var inErr error
			hoisted := false
			stopped := false
			err := in(f)(func(it xdm.Item) bool {
				if !hoisted {
					buf = append(buf, it)
					if len(buf) <= 4 {
						return true
					}
					hoisted = true
					if hoistedBody != nil {
						body = hoistedBody
						for i, hb := range hoistBinds {
							val, err := hb(f)
							if err != nil {
								inErr = err
								return false
							}
							f.slots[hoistSlots[i]] = val
						}
					}
					for _, b := range buf {
						cont, err := runBody(b)
						if err != nil || !cont {
							inErr, stopped = err, !cont
							return false
						}
					}
					buf = nil
					return true
				}
				cont, err := runBody(it)
				if err != nil || !cont {
					inErr, stopped = err, !cont
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
			if inErr != nil {
				return inErr
			}
			if stopped {
				return nil
			}
			for _, b := range buf { // short loop: never hoisted, replay now
				cont, err := runBody(b)
				if err != nil {
					return err
				}
				if !cont {
					return nil
				}
			}
			return nil
		}
	}
}
