package eval

import (
	"fmt"
	"strings"
	"testing"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// mapResolver serves documents from a map of URI → XML text.
type mapResolver map[string]string

func (m mapResolver) ResolveDoc(uri string) (*xdm.Document, error) {
	s, ok := m[uri]
	if !ok {
		return nil, fmt.Errorf("no such document %q", uri)
	}
	return xdm.ParseString(s, uri)
}

func run(t *testing.T, docs mapResolver, src string) xdm.Sequence {
	t.Helper()
	e := NewEngine(docs)
	res, err := e.QueryString(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return res
}

func runErr(t *testing.T, docs mapResolver, src string) error {
	t.Helper()
	e := NewEngine(docs)
	_, err := e.QueryString(src)
	if err == nil {
		t.Fatalf("query %q: expected error", src)
	}
	return err
}

// serialize renders a result sequence for golden comparison.
func serialize(s xdm.Sequence) string {
	var parts []string
	for _, it := range s {
		switch v := it.(type) {
		case *xdm.Node:
			parts = append(parts, xdm.SerializeString(v))
		case xdm.Atomic:
			parts = append(parts, v.ItemString())
		}
	}
	return strings.Join(parts, " ")
}

func expect(t *testing.T, docs mapResolver, src, want string) {
	t.Helper()
	got := serialize(run(t, docs, src))
	if got != want {
		t.Errorf("query %s\n got:  %s\n want: %s", src, got, want)
	}
}

var peopleDocs = mapResolver{
	"people.xml": `<people><person id="1"><name>Ann</name><age>30</age></person>` +
		`<person id="2"><name>Bob</name><age>45</age></person>` +
		`<person id="3"><name>Cyd</name><age>50</age></person></people>`,
}

func TestLiteralAndArith(t *testing.T) {
	expect(t, nil, "1 + 2 * 3", "7")
	expect(t, nil, "(1 + 2) * 3", "9")
	expect(t, nil, "7 mod 3", "1")
	expect(t, nil, "7 div 2", "3.5")
	expect(t, nil, "7 idiv 2", "3")
	expect(t, nil, "-(3) + 10", "7")
	expect(t, nil, "1.5 + 1", "2.5")
	expect(t, nil, `concat("a", "b", "c")`, "abc")
}

func TestArithErrors(t *testing.T) {
	runErr(t, nil, "1 div 0")
	runErr(t, nil, "1 idiv 0")
	runErr(t, nil, "1 mod 0")
	runErr(t, nil, "(1,2) + 1")
}

func TestEmptySequenceArith(t *testing.T) {
	expect(t, nil, "() + 1", "")
	expect(t, nil, "1 + ()", "")
}

func TestPathsAndPredicates(t *testing.T) {
	expect(t, peopleDocs, `doc("people.xml")/people/person/name/text()`, "Ann Bob Cyd")
	expect(t, peopleDocs, `doc("people.xml")//person[age > 40]/name/text()`, "Bob Cyd")
	expect(t, peopleDocs, `doc("people.xml")//person[2]/name/text()`, "Bob")
	expect(t, peopleDocs, `doc("people.xml")//person/@id`, `id="1" id="2" id="3"`)
	expect(t, peopleDocs, `count(doc("people.xml")//node())`, "16")
	expect(t, peopleDocs, `doc("people.xml")//person[@id = "2"]/age/text()`, "45")
	expect(t, peopleDocs, `doc("people.xml")//name[../age < 40]/text()`, "Ann")
}

func TestReverseAndHorizontalAxes(t *testing.T) {
	expect(t, peopleDocs, `doc("people.xml")//age/parent::person/@id`, `id="1" id="2" id="3"`)
	expect(t, peopleDocs, `doc("people.xml")//person[2]/preceding-sibling::person/name/text()`, "Ann")
	expect(t, peopleDocs, `doc("people.xml")//person[1]/following-sibling::person/name/text()`, "Bob Cyd")
	expect(t, peopleDocs, `count(doc("people.xml")//age/ancestor::*)`, "4") // people + 3 person, dedup
	expect(t, peopleDocs, `count(doc("people.xml")//age[1]/ancestor-or-self::node())`, "8")
	expect(t, peopleDocs, `doc("people.xml")//person[2]/following::name/text()`, "Cyd")
	expect(t, peopleDocs, `count(doc("people.xml")//person[3]/preceding::name)`, "2")
}

func TestDocOrderAndDedup(t *testing.T) {
	// Union of overlapping step results must be duplicate-free, in order.
	expect(t, peopleDocs,
		`count(doc("people.xml")//person union doc("people.xml")//person)`, "3")
	expect(t, peopleDocs,
		`(doc("people.xml")//person[2] union doc("people.xml")//person[1])/name/text()`, "Ann Bob")
	expect(t, peopleDocs,
		`count((doc("people.xml")//person, doc("people.xml")//person))`, "6") // "," keeps dups
	expect(t, peopleDocs,
		`count(doc("people.xml")//person intersect doc("people.xml")//person[2])`, "1")
	expect(t, peopleDocs,
		`(doc("people.xml")//person except doc("people.xml")//person[2])/@id`, `id="1" id="3"`)
}

func TestFLWOR(t *testing.T) {
	expect(t, peopleDocs,
		`for $p in doc("people.xml")//person where $p/age < 40 return $p/name/text()`, "Ann")
	expect(t, peopleDocs,
		`let $d := doc("people.xml") return count($d//person)`, "3")
	expect(t, peopleDocs,
		`for $p in doc("people.xml")//person order by $p/name descending return $p/name/text()`,
		"Cyd Bob Ann")
	expect(t, peopleDocs,
		`for $p in doc("people.xml")//person order by number($p/age) descending return $p/@id`,
		`id="3" id="2" id="1"`)
	expect(t, nil, `for $x in (1,2,3) return $x * 10`, "10 20 30")
	expect(t, nil, `for $x in (1,2), $y in (10,20) return $x + $y`, "11 21 12 22")
}

func TestQuantified(t *testing.T) {
	expect(t, nil, `some $x in (1,2,3) satisfies $x > 2`, "true")
	expect(t, nil, `every $x in (1,2,3) satisfies $x > 2`, "false")
	expect(t, nil, `every $x in () satisfies $x > 2`, "true")
	expect(t, nil, `some $x in () satisfies $x > 2`, "false")
}

func TestTypeswitch(t *testing.T) {
	expect(t, nil, `typeswitch (1) case xs:integer return "int" default return "other"`, "int")
	expect(t, nil, `typeswitch ("s") case xs:integer return "int" default return "other"`, "other")
	expect(t, peopleDocs,
		`typeswitch (doc("people.xml")//person[1]) case $n as node() return name($n) default return "atomic"`,
		"person")
	expect(t, nil,
		`typeswitch ((1,2)) case xs:integer return "one" case $s as xs:integer+ return count($s) default return "other"`,
		"2")
}

func TestComparisons(t *testing.T) {
	expect(t, nil, `1 = 1`, "true")
	expect(t, nil, `(1,2,3) = 3`, "true")   // existential
	expect(t, nil, `(1,2,3) != 1`, "true")  // existential !=
	expect(t, nil, `() = ()`, "false")      // empty comparisons
	expect(t, nil, `"abc" < "abd"`, "true") // string compare
	expect(t, peopleDocs, `doc("people.xml")//person/age = 45`, "true")
	expect(t, peopleDocs, `doc("people.xml")//person[1]/name = "Ann"`, "true")
}

func TestNodeIdentityComparisons(t *testing.T) {
	docs := peopleDocs
	expect(t, docs, `let $p := doc("people.xml")//person[1] return $p is $p`, "true")
	expect(t, docs, `doc("people.xml")//person[1] is doc("people.xml")//person[2]`, "false")
	expect(t, docs, `doc("people.xml")//person[1] << doc("people.xml")//person[2]`, "true")
	expect(t, docs, `doc("people.xml")//person[2] >> doc("people.xml")//person[1]`, "true")
	// Two doc() calls for the same URI see identical nodes.
	expect(t, docs, `doc("people.xml")//person[1] is doc("people.xml")//person[1]`, "true")
	// Constructed copies are distinct nodes.
	expect(t, nil, `let $a := <a/> let $b := <a/> return $a is $b`, "false")
	expect(t, nil, `let $a := <a/> return $a is $a`, "true")
}

func TestConstructors(t *testing.T) {
	expect(t, nil, `<a x="1"><b/>t</a>`, `<a x="1"><b/>t</a>`)
	expect(t, nil, `element a {attribute x {"1"}, text {"hi"}}`, `<a x="1">hi</a>`)
	expect(t, nil, `element {concat("a","b")} {()}`, `<ab/>`)
	expect(t, nil, `<a>{1+1}</a>`, `<a>2</a>`)
	expect(t, nil, `<a>{(1,2,3)}</a>`, `<a>1 2 3</a>`)
	expect(t, peopleDocs, `<wrap>{(doc("people.xml")//name)[1]}</wrap>`, `<wrap><name>Ann</name></wrap>`)
	expect(t, nil, `string(document {<a>x</a>})`, "x")
	// Constructor copies: navigating into a constructed node yields new identities.
	expect(t, peopleDocs,
		`let $n := (doc("people.xml")//name)[1] let $w := <wrap>{$n}</wrap> return $w/name is $n`,
		"false")
}

func TestMakenodesParentNavigation(t *testing.T) {
	// From Table I: node <b><c/></b> has parent::a inside the constructed tree.
	expect(t, nil, `name((<a><b><c/></b></a>/b)/parent::a)`, "a")
	expect(t, nil, `name((<a><b><c/></b></a>/b)/parent::node())`, "a")
}

func TestUserFunctions(t *testing.T) {
	src := `
	declare function square($x as xs:integer) as xs:integer { $x * $x };
	declare function twice($x as xs:integer) as xs:integer { square($x) + square($x) };
	twice(3)`
	expect(t, nil, src, "18")
}

func TestUserFunctionTypeErrors(t *testing.T) {
	runErr(t, nil, `declare function f($x as xs:integer) as xs:integer { $x }; f("s")`)
	runErr(t, nil, `declare function f($x as xs:integer) as node() { $x }; f(1)`)
	runErr(t, nil, `declare function f($x as node()) as item()* { $x }; f(())`)
}

func TestBuiltins(t *testing.T) {
	expect(t, nil, `count((1,2,3))`, "3")
	expect(t, nil, `empty(())`, "true")
	expect(t, nil, `exists(())`, "false")
	expect(t, nil, `not(1 = 2)`, "true")
	expect(t, nil, `string-join(("a","b"), "-")`, "a-b")
	expect(t, nil, `contains("hello", "ell")`, "true")
	expect(t, nil, `starts-with("hello", "he")`, "true")
	expect(t, nil, `substring("hello", 2, 3)`, "ell")
	expect(t, nil, `string-length("hello")`, "5")
	expect(t, nil, `normalize-space("  a   b ")`, "a b")
	expect(t, nil, `upper-case("ab")`, "AB")
	expect(t, nil, `sum((1,2,3))`, "6")
	expect(t, nil, `avg((2,4))`, "3")
	expect(t, nil, `min((3,1,2))`, "1")
	expect(t, nil, `max((3,1,2))`, "3")
	expect(t, nil, `floor(1.7)`, "1")
	expect(t, nil, `ceiling(1.2)`, "2")
	expect(t, nil, `round(1.5)`, "2")
	expect(t, nil, `abs(-3)`, "3")
	expect(t, nil, `distinct-values((1, 1, "1", 2))`, "1 1 2") // typed 1 vs string "1" are distinct under eq
	expect(t, nil, `reverse((1,2,3))`, "3 2 1")
	expect(t, nil, `subsequence((1,2,3,4), 2, 2)`, "2 3")
	expect(t, nil, `number("12")`, "12")
	expect(t, nil, `number("abc")`, "NaN")
	expect(t, nil, `deep-equal(<a x="1"/>, <a x="1"/>)`, "true")
	expect(t, nil, `deep-equal(<a x="1"/>, <a x="2"/>)`, "false")
	expect(t, nil, `fn:true()`, "true")
	expect(t, nil, `fn:count((1,2))`, "2")
}

func TestRootIdIdref(t *testing.T) {
	docs := mapResolver{
		"d.xml": `<db><item id="i1"><ref idref="i2"/></item><item id="i2"/></db>`,
	}
	expect(t, docs, `name(root(doc("d.xml")//item[1])/db)`, "db")
	expect(t, docs, `id("i2", doc("d.xml"))/@id`, `id="i2"`)
	expect(t, docs, `count(id(("i1","i2"), doc("d.xml")))`, "2")
	expect(t, docs, `name(idref("i2", doc("d.xml")))`, "ref")
	expect(t, docs, `count(id("zz", doc("d.xml")))`, "0")
}

func TestBaseURIDocumentURI(t *testing.T) {
	expect(t, peopleDocs, `base-uri(doc("people.xml")//person[1])`, "people.xml")
	expect(t, peopleDocs, `document-uri(doc("people.xml"))`, "people.xml")
	expect(t, peopleDocs, `document-uri(doc("people.xml")//person[1])`, "")
	expect(t, nil, `static-base-uri()`, DefaultStatic().BaseURI)
	expect(t, nil, `default-collation()`, DefaultStatic().DefaultCollation)
	expect(t, nil, `current-dateTime()`, DefaultStatic().CurrentDateTime)
}

func TestXRPCBaseURIOverride(t *testing.T) {
	// Shipped parameter nodes carry BaseURI; xrpc:base-uri must honor it.
	d := xdm.MustParseString("<a><b/></a>", "frag://1")
	d.DocElem().BaseURI = "original.xml"
	e := NewEngine(nil)
	q := xq.MustParseQuery(`xrpc:base-uri($n/b)`)
	if err := xq.Normalize(q); err != nil {
		t.Fatal(err)
	}
	ctx := e.newContext(nil).bind("n", xdm.Singleton(xdm.Item(d.DocElem())))
	res, err := ctx.eval(q.Body)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(res) != "original.xml" {
		t.Errorf("xrpc:base-uri = %s", serialize(res))
	}
}

func TestLogic(t *testing.T) {
	expect(t, nil, `fn:true() and fn:false()`, "false")
	expect(t, nil, `fn:true() or fn:false()`, "true")
	expect(t, nil, `1 = 1 and 2 = 2`, "true")
	// Short circuit: rhs error not reached.
	expect(t, nil, `fn:false() and (1 div 0 = 1)`, "false")
	expect(t, nil, `fn:true() or (1 div 0 = 1)`, "true")
}

func TestUnknownsAndErrors(t *testing.T) {
	runErr(t, nil, `$undefined`)
	runErr(t, nil, `nosuchfunction(1)`)
	runErr(t, nil, `doc("missing.xml")`)
	runErr(t, nil, `(1,2) is (1,2)`)
	runErr(t, nil, `1 union 2`)
	runErr(t, nil, `count(1, 2)`)
}

func TestDocCaching(t *testing.T) {
	e := NewEngine(peopleDocs)
	if _, err := e.QueryString(`(doc("people.xml")//person[1], doc("people.xml")//person[1])`); err != nil {
		t.Fatal(err)
	}
	if e.Stats.DocsResolved != 1 {
		t.Errorf("DocsResolved = %d, want 1 (cached)", e.Stats.DocsResolved)
	}
	e.ResetDocCache()
	if _, err := e.QueryString(`doc("people.xml")`); err != nil {
		t.Fatal(err)
	}
	if e.Stats.DocsResolved != 1 {
		t.Errorf("after reset DocsResolved = %d", e.Stats.DocsResolved)
	}
}

func TestQ1LocalSemantics(t *testing.T) {
	// Table I executed entirely locally: $first is always $abc (the parent),
	// overlap always true, and //c over the loop result returns ONE c node.
	src := `
	declare function makenodes() as node() { <a><b><c/></b></a>/b };
	declare function overlap($l as node(), $r as node()) as boolean()
	{ not(empty(($l/descendant-or-self::node()) intersect ($r/descendant-or-self::node()))) };
	declare function earlier($l as node(), $r as node()) as node()
	{ if ($l << $r) then $l else $r };
	let $bc := makenodes()
	let $abc := $bc/parent::a
	return count((for $node in ($bc, $abc)
	        let $first := earlier($bc, $abc)
	        return if (overlap($first, $node)) then $node else ())//c)`
	expect(t, nil, src, "1")
}

func TestQ2StyleJoin(t *testing.T) {
	docs := mapResolver{
		"students.xml": `<people>` +
			`<person><name>tutor1</name><tutor>none</tutor><id>s1</id></person>` +
			`<person><name>stu2</name><tutor>tutor1</tutor><id>s2</id></person>` +
			`</people>`,
		"course42.xml": `<enroll>` +
			`<exam id="s1"><grade>A</grade></exam>` +
			`<exam id="s2"><grade>B</grade></exam>` +
			`</enroll>`,
	}
	src := `
	(let $s := doc("students.xml")/child::people/child::person return
	 let $c := doc("course42.xml") return
	 let $t := for $x in $s return
	           if ($x/child::tutor = $s/child::name) then $x else ()
	 return for $e in $c/child::enroll/child::exam return
	        if ($e/attribute::id = $t/child::id) then $e else ())/child::grade`
	expect(t, docs, src, "<grade>B</grade>")
}

func TestBulkRPCPathThroughFake(t *testing.T) {
	// A for-loop whose body is exactly a remote call uses one bulk call.
	fake := &fakeRemote{}
	e := NewEngine(nil)
	e.Remote = fake
	src := `
	declare function f($x as xs:integer) as xs:integer { $x * 2 };
	for $i in (1,2,3) return execute at {"peerA"} { f($i) }`
	res, err := e.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	if fake.bulkCalls != 1 || fake.singleCalls != 0 {
		t.Errorf("bulk=%d single=%d, want 1/0", fake.bulkCalls, fake.singleCalls)
	}
	if serialize(res) != "2 4 6" {
		t.Errorf("bulk result = %s", serialize(res))
	}
}

func TestSingleRPCThroughFake(t *testing.T) {
	fake := &fakeRemote{}
	e := NewEngine(nil)
	e.Remote = fake
	src := `
	declare function f($x as xs:integer) as xs:integer { $x * 2 };
	let $r := execute at {"peerA"} { f(21) } return $r`
	res, err := e.QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	if fake.singleCalls != 1 {
		t.Errorf("single calls = %d", fake.singleCalls)
	}
	if serialize(res) != "42" {
		t.Errorf("result = %s", serialize(res))
	}
}

// fakeRemote evaluates the shipped body locally (params bound), emulating a
// perfectly transparent remote peer.
type fakeRemote struct {
	singleCalls, bulkCalls int
}

func (f *fakeRemote) CallRemote(target string, x *xq.XRPCExpr, params []xdm.Sequence) (xdm.Sequence, error) {
	f.singleCalls++
	return evalShipped(x, params)
}

func (f *fakeRemote) CallRemoteBulk(target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence) ([]xdm.Sequence, error) {
	f.bulkCalls++
	out := make([]xdm.Sequence, len(iterations))
	for i, params := range iterations {
		r, err := evalShipped(x, params)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func evalShipped(x *xq.XRPCExpr, params []xdm.Sequence) (xdm.Sequence, error) {
	e := NewEngine(nil)
	ctx := e.newContext(nil)
	for i, p := range x.Params {
		ctx = ctx.bind(p.Name, params[i])
	}
	return ctx.eval(x.Body)
}
