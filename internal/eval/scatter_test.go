package eval

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// scatterFake records scatter dispatches; it evaluates shipped bodies
// locally like fakeRemote, and can be told to fail for specific peers.
type scatterFake struct {
	fakeRemote
	scatterCalls int
	batches      []ScatterBatch
	failPeers    map[string]bool
}

func (f *scatterFake) CallRemoteScatter(x *xq.XRPCExpr, batches []ScatterBatch) ([][]xdm.Sequence, []error) {
	f.scatterCalls++
	f.batches = batches
	results := make([][]xdm.Sequence, len(batches))
	errs := make([]error, len(batches))
	for b, batch := range batches {
		if f.failPeers[batch.Target] {
			errs[b] = fmt.Errorf("peer %s down", batch.Target)
			continue
		}
		results[b], errs[b] = f.fakeRemote.CallRemoteBulk(batch.Target, x, batch.Iterations)
	}
	return results, errs
}

const scatterSrc = `
	declare function f($x as xs:string) as item()* { $x };
	for $p in ("a", "b", "a", "c", "b", "a") return execute at {$p} { f($p) }`

func TestScatterPartitionsByPeerPreservingOrder(t *testing.T) {
	fake := &scatterFake{}
	e := NewEngine(nil)
	e.Remote = fake
	res, err := e.QueryString(scatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(res); got != "a b a c b a" {
		t.Errorf("results must reassemble in original loop order, got %q", got)
	}
	if fake.scatterCalls != 1 {
		t.Fatalf("scatter dispatches = %d, want 1", fake.scatterCalls)
	}
	// Batches ordered by first appearance of each peer; iteration counts
	// match each peer's share of the loop.
	var order []string
	counts := map[string]int{}
	for _, b := range fake.batches {
		order = append(order, b.Target)
		counts[b.Target] = len(b.Iterations)
	}
	if strings.Join(order, ",") != "a,b,c" {
		t.Errorf("batch order = %v, want first-appearance order a,b,c", order)
	}
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Errorf("batch sizes = %v", counts)
	}
	st := e.StatsSnapshot()
	if st.ScatterWaves != 1 || st.BulkCalls != 3 {
		t.Errorf("stats waves=%d bulk=%d, want 1/3", st.ScatterWaves, st.BulkCalls)
	}
}

func TestScatterFallsBackToSequentialBulk(t *testing.T) {
	// A RemoteCaller without the ScatterCaller extension still serves
	// variable-target loops: one sequential CallRemoteBulk per peer.
	fake := &fakeRemote{}
	e := NewEngine(nil)
	e.Remote = fake
	res, err := e.QueryString(scatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := serialize(res); got != "a b a c b a" {
		t.Errorf("fallback result = %q", got)
	}
	if fake.bulkCalls != 3 || fake.singleCalls != 0 {
		t.Errorf("bulk=%d single=%d, want 3/0", fake.bulkCalls, fake.singleCalls)
	}
}

func TestScatterErrorIsDeterministic(t *testing.T) {
	// Both b and c fail; the surfaced error must always name b — the failed
	// peer that appears first in the loop — regardless of scheduling.
	for i := 0; i < 10; i++ {
		fake := &scatterFake{failPeers: map[string]bool{"b": true, "c": true}}
		e := NewEngine(nil)
		e.Remote = fake
		_, err := e.QueryString(scatterSrc)
		if err == nil {
			t.Fatal("expected error")
		}
		if !strings.Contains(err.Error(), "scatter to b") {
			t.Fatalf("error = %v, want the first failed peer (b)", err)
		}
	}
}

func TestScatterEmptyLoopSkipsDispatch(t *testing.T) {
	fake := &scatterFake{}
	e := NewEngine(nil)
	e.Remote = fake
	res, err := e.QueryString(`
	declare function f($x as xs:string) as item()* { $x };
	for $p in () return execute at {$p} { f($p) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || fake.scatterCalls != 0 || fake.bulkCalls != 0 {
		t.Errorf("empty loop: res=%d scatter=%d bulk=%d", len(res), fake.scatterCalls, fake.bulkCalls)
	}
}

func TestScatterResultCountMismatchIsAnError(t *testing.T) {
	fake := &shortScatter{}
	e := NewEngine(nil)
	e.Remote = fake
	_, err := e.QueryString(scatterSrc)
	if err == nil || !strings.Contains(err.Error(), "results for") {
		t.Errorf("want result-count mismatch error, got %v", err)
	}
}

// shortScatter returns one result fewer than iterations per batch.
type shortScatter struct{ fakeRemote }

func (s *shortScatter) CallRemoteScatter(x *xq.XRPCExpr, batches []ScatterBatch) ([][]xdm.Sequence, []error) {
	results := make([][]xdm.Sequence, len(batches))
	errs := make([]error, len(batches))
	for b, batch := range batches {
		res, err := s.fakeRemote.CallRemoteBulk(batch.Target, x, batch.Iterations)
		results[b], errs[b] = res[:len(res)-1], err
	}
	return results, errs
}

// TestDocSingleFlight: concurrent doc() resolutions of one URI must share a
// single resolver call and observe identical node identities.
func TestDocSingleFlight(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	e := NewEngine(ResolverFunc(func(uri string) (*xdm.Document, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return xdm.ParseString("<r/>", uri)
	}))
	const goroutines = 16
	docs := make([]*xdm.Document, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := e.Doc("u.xml")
			if err != nil {
				t.Error(err)
			}
			docs[i] = d
		}(i)
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("resolver calls = %d, want 1 (single flight)", calls)
	}
	for i := 1; i < goroutines; i++ {
		if docs[i] != docs[0] {
			t.Fatalf("goroutine %d observed a different document identity", i)
		}
	}
	if st := e.StatsSnapshot(); st.DocsResolved != 1 {
		t.Errorf("DocsResolved = %d, want 1", st.DocsResolved)
	}
}

// TestDocErrorNotCached: a failed resolution must not poison the cache.
func TestDocErrorNotCached(t *testing.T) {
	fail := true
	e := NewEngine(ResolverFunc(func(uri string) (*xdm.Document, error) {
		if fail {
			return nil, errors.New("transient")
		}
		return xdm.ParseString("<r/>", uri)
	}))
	if _, err := e.Doc("u.xml"); err == nil {
		t.Fatal("expected transient error")
	}
	fail = false
	if _, err := e.Doc("u.xml"); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
}
