package eval

import (
	"testing"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// referenceAxisNodes is the seed's per-node axis implementation (fresh slice
// per call, sibling rescans, parent-walk ancestor tests), kept verbatim as
// the oracle for the buffer-reusing rewrite.
func referenceAxisNodes(n *xdm.Node, axis xq.Axis, test xq.NodeTest) []*xdm.Node {
	var out []*xdm.Node
	add := func(m *xdm.Node) {
		if matchTest(m, axis, test) {
			out = append(out, m)
		}
	}
	isAncestor := func(a, m *xdm.Node) bool {
		for p := m.Parent; p != nil; p = p.Parent {
			if p == a {
				return true
			}
		}
		return false
	}
	switch axis {
	case xq.AxisChild:
		if n.Kind == xdm.AttributeNode {
			return nil
		}
		for _, ch := range n.Children {
			add(ch)
		}
	case xq.AxisAttribute:
		for _, a := range n.Attrs {
			add(a)
		}
	case xq.AxisSelf:
		add(n)
	case xq.AxisDescendant:
		for _, ch := range n.Children {
			ch.WalkDescendants(func(m *xdm.Node) bool { add(m); return true })
		}
	case xq.AxisDescendantOrSelf:
		n.WalkDescendants(func(m *xdm.Node) bool { add(m); return true })
	case xq.AxisParent:
		if n.Parent != nil {
			add(n.Parent)
		}
	case xq.AxisAncestor:
		var anc []*xdm.Node
		for p := n.Parent; p != nil; p = p.Parent {
			anc = append(anc, p)
		}
		for i := len(anc) - 1; i >= 0; i-- {
			add(anc[i])
		}
	case xq.AxisAncestorOrSelf:
		var anc []*xdm.Node
		for p := n; p != nil; p = p.Parent {
			anc = append(anc, p)
		}
		for i := len(anc) - 1; i >= 0; i-- {
			add(anc[i])
		}
	case xq.AxisFollowingSibling:
		if n.Parent == nil || n.Kind == xdm.AttributeNode {
			return nil
		}
		seen := false
		for _, sib := range n.Parent.Children {
			if sib == n {
				seen = true
				continue
			}
			if seen {
				add(sib)
			}
		}
	case xq.AxisPrecedingSibling:
		if n.Parent == nil || n.Kind == xdm.AttributeNode {
			return nil
		}
		for _, sib := range n.Parent.Children {
			if sib == n {
				break
			}
			add(sib)
		}
	case xq.AxisFollowing:
		start := n
		if n.Kind == xdm.AttributeNode {
			start = n.Parent
		}
		for f := start.Following(); f != nil; f = f.NextInDocument() {
			add(f)
		}
	case xq.AxisPreceding:
		root := n.RootNode()
		target := n
		if n.Kind == xdm.AttributeNode {
			target = n.Parent
		}
		root.WalkDescendants(func(m *xdm.Node) bool {
			if m == target {
				return false
			}
			if !isAncestor(m, target) {
				add(m)
			}
			return true
		})
	}
	return out
}

var equivAxes = []xq.Axis{
	xq.AxisChild, xq.AxisAttribute, xq.AxisSelf, xq.AxisDescendant,
	xq.AxisDescendantOrSelf, xq.AxisParent, xq.AxisAncestor,
	xq.AxisAncestorOrSelf, xq.AxisFollowingSibling, xq.AxisPrecedingSibling,
	xq.AxisFollowing, xq.AxisPreceding,
}

var equivTests = []xq.NodeTest{
	{Kind: xq.TestAnyNode},
	{Kind: xq.TestWildcard},
	{Kind: xq.TestText},
	{Kind: xq.TestComment},
	{Kind: xq.TestName, Name: "person"},
	{Kind: xq.TestName, Name: "id"},
}

func equivDoc(t *testing.T) *xdm.Document {
	t.Helper()
	d, err := xdm.ParseString(`<site id="s" v="2">
	  <people>
	    <person id="p1"><name>Ann</name><age>47</age><!--vip--></person>
	    <person id="p2"><name>Bob</name><profile><age>31</age><edu>BSc</edu></profile></person>
	    <person id="p3"/>
	  </people>
	  <regions><eu><item id="i1"><desc>x<em>y</em>z</desc></item></eu><na/></regions>
	</site>`, "equiv.xml")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAxisNodesMatchesReference checks every axis × node test × context node
// combination against the seed implementation.
func TestAxisNodesMatchesReference(t *testing.T) {
	d := equivDoc(t)
	var ctxNodes []*xdm.Node
	d.Root.WalkDescendants(func(n *xdm.Node) bool {
		ctxNodes = append(ctxNodes, n)
		ctxNodes = append(ctxNodes, n.Attrs...)
		return true
	})
	for _, axis := range equivAxes {
		for _, test := range equivTests {
			for _, n := range ctxNodes {
				want := referenceAxisNodes(n, axis, test)
				got := AxisNodes(n, axis, test)
				if len(got) != len(want) {
					t.Fatalf("%s::%v from %s(pre=%d): %d nodes, want %d",
						axis, test, n.Name, n.Pre(), len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s::%v from %s(pre=%d): node %d differs",
							axis, test, n.Name, n.Pre(), i)
					}
				}
			}
		}
	}
}

// TestAxisOutputOrderedAndDistinct asserts the invariant evalPath relies on
// to skip sorting for single-context-node steps: every axis emits document
// order without duplicates.
func TestAxisOutputOrderedAndDistinct(t *testing.T) {
	d := equivDoc(t)
	var ctxNodes []*xdm.Node
	d.Root.WalkDescendants(func(n *xdm.Node) bool {
		ctxNodes = append(ctxNodes, n)
		ctxNodes = append(ctxNodes, n.Attrs...)
		return true
	})
	for _, axis := range equivAxes {
		for _, n := range ctxNodes {
			out := AxisNodes(n, axis, xq.NodeTest{Kind: xq.TestAnyNode})
			for i := 1; i < len(out); i++ {
				if xdm.Compare(out[i-1], out[i]) >= 0 {
					t.Fatalf("%s from %s(pre=%d): output not strictly increasing at %d",
						axis, n.Name, n.Pre(), i)
				}
			}
		}
	}
}

// TestEvalPathMultiStepEquivalence runs whole path expressions and compares
// against step-by-step reference evaluation (reference axis + reference sort
// over the full context union).
func TestEvalPathMultiStepEquivalence(t *testing.T) {
	docSrc := `<site id="s"><people>
	  <person id="p1"><name>Ann</name><age>47</age></person>
	  <person id="p2"><name>Bob</name><profile><age>31</age></profile></person>
	</people><regions><eu><item id="i1"/></eu></regions></site>`
	eng := NewEngine(ResolverFunc(func(uri string) (*xdm.Document, error) {
		return xdm.ParseString(docSrc, uri)
	}))
	queries := []struct {
		src   string
		steps []struct {
			axis xq.Axis
			test xq.NodeTest
		}
	}{
		{src: `doc("d")//age`, steps: []struct {
			axis xq.Axis
			test xq.NodeTest
		}{
			{xq.AxisDescendantOrSelf, xq.NodeTest{Kind: xq.TestAnyNode}},
			{xq.AxisChild, xq.NodeTest{Kind: xq.TestName, Name: "age"}},
		}},
		{src: `doc("d")//person/ancestor-or-self::*`, steps: []struct {
			axis xq.Axis
			test xq.NodeTest
		}{
			{xq.AxisDescendantOrSelf, xq.NodeTest{Kind: xq.TestAnyNode}},
			{xq.AxisChild, xq.NodeTest{Kind: xq.TestName, Name: "person"}},
			{xq.AxisAncestorOrSelf, xq.NodeTest{Kind: xq.TestWildcard}},
		}},
		{src: `doc("d")//name/following::node()`, steps: []struct {
			axis xq.Axis
			test xq.NodeTest
		}{
			{xq.AxisDescendantOrSelf, xq.NodeTest{Kind: xq.TestAnyNode}},
			{xq.AxisChild, xq.NodeTest{Kind: xq.TestName, Name: "name"}},
			{xq.AxisFollowing, xq.NodeTest{Kind: xq.TestAnyNode}},
		}},
		{src: `doc("d")//age/preceding::*`, steps: []struct {
			axis xq.Axis
			test xq.NodeTest
		}{
			{xq.AxisDescendantOrSelf, xq.NodeTest{Kind: xq.TestAnyNode}},
			{xq.AxisChild, xq.NodeTest{Kind: xq.TestName, Name: "age"}},
			{xq.AxisPreceding, xq.NodeTest{Kind: xq.TestWildcard}},
		}},
	}
	for _, q := range queries {
		got, err := eng.QueryString(q.src)
		if err != nil {
			t.Fatalf("%s: %v", q.src, err)
		}
		// Reference: start from the document node, apply each step to every
		// context node, union, reference-sort.
		d, _ := eng.Doc("d")
		cur := []*xdm.Node{d.Root}
		for _, st := range q.steps {
			var next []*xdm.Node
			for _, n := range cur {
				next = append(next, referenceAxisNodes(n, st.axis, st.test)...)
			}
			cur = xdm.SortDocOrder(next)
		}
		if len(got) != len(cur) {
			t.Fatalf("%s: %d items, want %d", q.src, len(got), len(cur))
		}
		for i, it := range got {
			if it.(*xdm.Node) != cur[i] {
				t.Fatalf("%s: item %d differs", q.src, i)
			}
		}
	}
}
