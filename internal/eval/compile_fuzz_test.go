package eval

import (
	"errors"
	"testing"
	"time"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// fuzzFixtureXML is one document covering the vocabulary of every seed:
// XMark-ish people, auctions, a book list with prices, and the l1/l2 axis
// playground — so mutated queries keep hitting real nodes instead of
// evaluating over empty sequences.
const fuzzFixtureXML = `<site>
 <people>
  <person id="p1"><name>Tang</name><emailaddress>t@x</emailaddress><profile income="45000"><age>34</age></profile><address><city>Amsterdam</city></address></person>
  <person id="p2"><name>Bo</name><emailaddress>b@x</emailaddress><profile income="21000"><age>46</age></profile><address><city>Delft</city></address></person>
  <person id="p3"><name>Ana</name><profile income="99000"><age>25</age></profile><address><city>Utrecht</city></address></person>
  <person id="p4"><name>Ivo</name><profile income="30500"><age>51</age></profile><address><city>Leiden</city></address></person>
  <person id="p5"><name>Eva</name><profile income="60000"><age>39</age></profile><address><city>Delft</city></address></person>
 </people>
 <open_auctions>
  <open_auction><seller person="p1"/><annotation><author>Tang</author></annotation></open_auction>
  <open_auction><seller person="p9"/><annotation><author>Zed</author></annotation></open_auction>
 </open_auctions>
 <books>
  <book id="b1"><title>Query Processing</title><price>49</price><author>Tang</author></book>
  <book id="b2"><title>XML</title><price>28</price><author>Bo</author></book>
  <book id="b3"><title>Streams</title><price>31</price><author>Ana</author></book>
 </books>
 <l1><l2 k="y"><l3/></l2><l2 k="n"/><l2 k="y"/></l1>
</site>`

// anyDocResolver serves the shared fixture for every URI, so mutated
// document names still resolve and both engines observe identical node
// identities.
type anyDocResolver struct{ doc *xdm.Document }

func (r anyDocResolver) ResolveDoc(string) (*xdm.Document, error) { return r.doc, nil }

func fuzzFixture(tb testing.TB) *xdm.Document {
	tb.Helper()
	d, err := xdm.ParseString(fuzzFixtureXML, "fuzz://fixture")
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// compiledFuzzSeeds replicates the FuzzParseQuery corpus (every construct of
// the dialect), adds shard-equivalence generator shapes, and pins the
// compiled-specific corners: hoisting heuristics, predicate fusion,
// constant folding, deferred constant faults, duplicate declarations.
var compiledFuzzSeeds = []string{
	// FuzzParseQuery corpus (internal/xq).
	`(let $t := (let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
	            return for $x in $s return
	                   if ($x/descendant::age < 40) then $x else ())
	 return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
	                   return $c/descendant::open_auction)
	        return if ($e/child::seller/attribute::person = $t/attribute::id)
	               then $e/child::annotation else ())/child::author`,
	`let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
	 return for $x in $s return
	       if ($x/descendant::age > 45) then $x else ()`,
	`declare function young() as item()* {
	  for $x in doc("xmk.xml")/child::site/child::people/child::person
	  return if ($x/descendant::age < 40) then $x/child::name else ()
	};
	for $p in ("peer1", "peer2") return execute at {$p} { young() }`,
	`for $x in doc("shard://xmark/people")/child::site/child::people/child::person
	 return if ($x/descendant::age < 40) then $x/child::name else ()`,
	`doc("a.xml")//book[price > 28][2]/title/text()`,
	`(doc("a.xml")//book)[last()]/@id`,
	`doc("a.xml")//l2[@k = "y"]/preceding-sibling::l2/ancestor-or-self::node()`,
	`for $b in doc("a.xml")//book order by number($b/price) descending, $b/title return $b`,
	`some $a in doc("a.xml")//author satisfies $a = "Tang"`,
	`every $a in doc("a.xml")//author satisfies string-length($a) > 2`,
	`typeswitch (doc("a.xml")//book[1]) case $n as element() return name($n)
	 case $t as text() return "txt" default $d return count($d)`,
	`element report { attribute n {count(doc("a.xml")//book)}, text {"x"}, doc("a.xml")//book/title }`,
	`<a b="1" c="{2}"><b/>text</a>`,
	`document { element x { 1 + 2 * 3 idiv 4 mod 5 - -6 } }`,
	`(1, 2.5, "three", true(), $v) union doc("a.xml")//a intersect doc("a.xml")//b except doc("a.xml")//c`,
	`$x is $y or $x << $y and $x >> $y`,
	`if (1 = 2 or 3 != 4 and 5 <= 6) then 7 else 8`,
	`let $f := 1 return (: comment (: nested :) here :) $f`,
	`"unterminated`,
	`'single''quoted'`,
	`execute at {"p"} { f(1, (), ("a", "b")) }`,
	``,
	`$`,
	`/`,
	`//`,
	`..`,
	`.`,
	`()`,
	// Shard-equivalence generator shapes (internal/core harness).
	`doc("shard://xmark/people")/child::site/child::people/child::person[child::profile/child::age > 30]/child::name`,
	`count(doc("shard://xmark/people")/child::site/child::people/child::person[descendant::age < 40])`,
	`for $x in doc("shard://xmark/people")/child::site/child::people/child::person[child::address/child::city = "Delft"]
	 return element rec { $x/child::name, $x/descendant::age }`,
	`let $k := 30 return for $x in doc("shard://xmark/people")/child::site/child::people/child::person[descendant::age > $k]
	 return if ($x/descendant::age < $k + 9) then $x/child::name else ()`,
	`doc("shard://xmark/people")/child::site/child::people/child::person[position() = 2]/child::name`,
	`doc("shard://xmark/people")/child::site/child::people/child::person[last()]`,
	`declare function pick($y as item()*) as item()* { if ($y/descendant::age < 40) then $y/child::name else () };
	 for $x in doc("shard://xmark/people")/child::site/child::people/child::person return pick($x)`,
	`for $x in doc("a.xml")//person[child::profile/attribute::income > 30000]
	 return $x/parent::people/child::person[descendant::age < 40]/child::name`,
	// Hoisting corners: >4-iteration loops with invariant compare operands,
	// including a faulting hoisted binding inside a never-taken branch.
	`for $x in (1, 2, 3, 4, 5, 6) return if ($x > 10) then ($x = doc("a.xml")//book/price) else $x`,
	`for $x in (1, 2, 3, 4) return if ($x > 10) then ($x = doc("a.xml")//book/price) else $x`,
	`for $x in (1, 2, 3, 4, 5) return if (false()) then (unknownfn() = 1) else $x`,
	`for $p in doc("a.xml")//person return for $q in (1, 2, 3, 4, 5)
	 return if ($q = count(doc("a.xml")//book)) then $p/child::name else ()`,
	// Compiled-specific corners: constant folding with deferred faults,
	// predicate fusion, duplicate declarations, focus builtins, typeswitch
	// defaults, unary over folded constants, nested function calls.
	`if (true()) then 1 else (1 div 0)`,
	`if (false()) then (1 idiv 0) else 2`,
	`1 idiv 0`,
	`-("a")`,
	`doc("a.xml")//book[price > 28 and @id != "b9"][position() = 1]/title`,
	`doc("a.xml")//person[not(child::emailaddress)]/child::name`,
	`declare function f($a as xs:integer) as xs:integer { $a + 1 };
	 declare function f($a as xs:integer) as xs:integer { $a * 2 };
	 f(10)`,
	`declare function rec($n as xs:integer) as xs:integer { if ($n <= 0) then 0 else rec($n - 1) }; rec(12)`,
	`doc("a.xml")//book[root()//l2[@k = "y"]]/title`,
	`typeswitch (1 + 1) case $i as xs:integer return $i default return "no"`,
	`let $d := doc("a.xml") return ($d//l2[1], $d//l2[@k = "y"][2], $d//l3/ancestor::l1)`,
	`string-join(for $b in doc("a.xml")//book return $b/title/text(), "|")`,
}

// FuzzCompiledVsTreeWalk is the differential fuzzer of the compiler: every
// parsed query must evaluate byte-identically (or fault with the identical
// error) with Options.Compile on and off, through both the eager and the
// lazy entry points. Deadline aborts are the single tolerated asymmetry —
// they depend on wall-clock timing, which the two modes legitimately reach
// at different node counts.
func FuzzCompiledVsTreeWalk(f *testing.F) {
	for _, seed := range compiledFuzzSeeds {
		f.Add(seed)
	}
	doc := fuzzFixture(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		q1, err := xq.ParseQuery(src)
		if err != nil {
			return
		}
		q2, err := xq.ParseQuery(src)
		if err != nil {
			return
		}
		// A deadline bounds runaway loops and unbounded recursion; it is
		// generous enough that ordinary inputs never see it.
		deadline := time.Now().Add(25 * time.Millisecond)
		tw := NewEngine(anyDocResolver{doc})
		tw.Deadline = deadline
		cc := NewEngine(anyDocResolver{doc})
		cc.Deadline = deadline
		cc.Options.Compile = true

		// Probe normalization on a scratch parse: Normalize mutates (and
		// validates) once, so probing q1/q2 directly would eat the error the
		// engines are supposed to report.
		q0, err := xq.ParseQuery(src)
		if err != nil {
			return
		}
		normErr := xq.Normalize(q0)

		twRes, twErr := tw.Query(q1)
		ccRes, ccErr := cc.Query(q2)
		if errors.Is(twErr, ErrDeadlineExceeded) || errors.Is(ccErr, ErrDeadlineExceeded) {
			return
		}
		compareModes(t, "lazy", src, twRes, twErr, ccRes, ccErr)
		if normErr != nil {
			// Normalization rejected the query in both modes identically;
			// there is nothing to compile.
			return
		}

		// The eager halves: the tree-walker's eval against the compiled
		// Program's eager body (the path function calls take).
		twCtx := tw.newContext(q1.Funcs)
		twRes, twErr = twCtx.eval(q1.Body)
		p, err := CompileQuery(q2)
		if err != nil {
			t.Fatalf("CompileQuery: %v\ninput: %q", err, src)
		}
		ccRes, ccErr = p.run(cc.newContext(q2.Funcs))
		if errors.Is(twErr, ErrDeadlineExceeded) || errors.Is(ccErr, ErrDeadlineExceeded) {
			return
		}
		compareModes(t, "eager", src, twRes, twErr, ccRes, ccErr)
	})
}

func compareModes(t *testing.T, mode, src string, twRes xdm.Sequence, twErr error, ccRes xdm.Sequence, ccErr error) {
	t.Helper()
	if (twErr == nil) != (ccErr == nil) {
		t.Fatalf("%s error divergence:\ninput: %q\ntree-walk err: %v\ncompiled err:  %v", mode, src, twErr, ccErr)
	}
	if twErr != nil {
		if twErr.Error() != ccErr.Error() {
			t.Fatalf("%s error text divergence:\ninput: %q\ntree-walk: %q\ncompiled:  %q", mode, src, twErr, ccErr)
		}
		return
	}
	if got, want := serialize(ccRes), serialize(twRes); got != want {
		t.Fatalf("%s result divergence:\ninput: %q\ntree-walk: %q\ncompiled:  %q", mode, src, want, got)
	}
}
