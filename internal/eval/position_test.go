package eval

import "testing"

func TestPositionAndLastInPredicates(t *testing.T) {
	expect(t, peopleDocs, `doc("people.xml")//person[position() = 2]/name/text()`, "Bob")
	expect(t, peopleDocs, `doc("people.xml")//person[position() > 1]/@id`, `id="2" id="3"`)
	expect(t, peopleDocs, `doc("people.xml")//person[last()]/name/text()`, "Cyd")
	expect(t, peopleDocs, `doc("people.xml")//person[position() = last() - 1]/@id`, `id="2"`)
	expect(t, nil, `(10,20,30)[position() = last()]`, "30")
	expect(t, nil, `(10,20,30)[position() != 2]`, "10 30")
	runErr(t, nil, `position()`)
	runErr(t, nil, `last()`)
}
