package eval

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// expectCompiled evaluates src in both modes over docs and requires
// byte-identical serialized results (or identical faults) — the deterministic
// core of the differential fuzzer, used for pinned regressions.
func expectCompiled(t *testing.T, docs mapResolver, src string) {
	t.Helper()
	q1, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	q2, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	tw := NewEngine(docs)
	cc := NewEngine(docs)
	cc.Options.Compile = true
	q0, err := xq.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	normErr := xq.Normalize(q0)
	twRes, twErr := tw.Query(q1)
	ccRes, ccErr := cc.Query(q2)
	compareModes(t, "lazy", src, twRes, twErr, ccRes, ccErr)
	if normErr != nil {
		return
	}
	twRes, twErr = tw.newContext(q1.Funcs).eval(q1.Body)
	p, err := CompileQuery(q2)
	if err != nil {
		t.Fatalf("CompileQuery: %v\n%s", err, src)
	}
	ccRes, ccErr = p.run(cc.newContext(q2.Funcs))
	compareModes(t, "eager", src, twRes, twErr, ccRes, ccErr)
}

// TestCompiledEquivalenceRegressions pins compiled-vs-tree-walk equivalence
// over every lowering rule and every input the differential fuzzer ever
// flagged. Queries run over the fuzz fixture through both the lazy and the
// eager entry points.
func TestCompiledEquivalenceRegressions(t *testing.T) {
	docs := mapResolver{"f.xml": fuzzFixtureXML}
	queries := []string{
		// Slot resolution, shadowing, let/for nesting.
		`let $a := 1 return let $a := $a + 1 return let $b := $a * 10 return ($a, $b)`,
		`for $x in (1, 2, 3) return for $x in ($x, $x * 10) return $x`,
		`let $s := doc("f.xml")//person return for $x in $s return $x/child::name`,
		// Constant folding, including deferred faults in dead branches.
		`1 + 2 * 3 idiv 4 mod 5 - -6`,
		`if (false()) then (1 idiv 0) else "live"`,
		`if (true()) then "live" else (1 div 0)`,
		`("a", "b") = "b"`,
		// Comparison specialization by static operand kind.
		`doc("f.xml")//book[price > 28]/title`,
		`doc("f.xml")//book["Tang" = author]/@id`,
		`doc("f.xml")//person[child::profile/attribute::income > 30000]/child::name`,
		// Predicate fusion: boolean, positional, mixed, numeric-literal.
		`doc("f.xml")//book[2]/title/text()`,
		`doc("f.xml")//book[price > 28][2]/title`,
		`doc("f.xml")//book[position() = 2]`,
		`(doc("f.xml")//book)[last()]/@id`,
		`doc("f.xml")//person[not(child::emailaddress)]/child::name`,
		`doc("f.xml")//l2[@k = "y"][child::l3]`,
		// Streaming shapes: descendant scans, filters over mixed axes.
		`doc("f.xml")/site/people/person/profile/age`,
		`doc("f.xml")//age`,
		`doc("f.xml")//l2[@k = "y"]/preceding-sibling::l2/ancestor-or-self::node()`,
		// FLWOR pipelines, hoisting at the >4 threshold and below it.
		`for $x in (1, 2, 3, 4, 5, 6) return if ($x > 10) then ($x = doc("f.xml")//book/price) else $x`,
		`for $x in (1, 2, 3, 4) return if ($x > 10) then ($x = doc("f.xml")//book/price) else $x`,
		`for $x in (1, 2, 3, 4, 5) return if (false()) then (unknownfn() = 1) else $x`,
		`for $b in doc("f.xml")//book order by number($b/price) descending return $b/title`,
		// Quantifiers, typeswitch, logic.
		`some $a in doc("f.xml")//author satisfies $a = "Tang"`,
		`every $a in doc("f.xml")//author satisfies string-length($a) > 2`,
		`typeswitch (doc("f.xml")//book[1]) case $n as element() return name($n) default $d return count($d)`,
		`typeswitch (1 + 1) case $i as xs:integer return $i default return "no"`,
		`if (1 = 2 or 3 != 4 and 5 <= 6) then 7 else 8`,
		// Declared functions: recursion, duplicate params, typed results.
		`declare function rec($n as xs:integer) as xs:integer { if ($n <= 0) then 0 else rec($n - 1) }; rec(12)`,
		`declare function pick($y as item()*) as item()* { if ($y/descendant::age < 40) then $y/child::name else () };
		 for $x in doc("f.xml")//person return pick($x)`,
		`declare function one($a as xs:integer) as xs:integer { $a }; one("x")`,
		// Focus builtins inside predicates and paths.
		`doc("f.xml")//book[root()//l2[@k = "y"]]/title`,
		`position()`,
		`last()`,
		// Node-set operators, node comparisons, constructors (fallback).
		`count(doc("f.xml")//author union doc("f.xml")//title)`,
		`doc("f.xml")//l2[1] is doc("f.xml")//l2[@k = "y"][1]`,
		`element report { attribute n {count(doc("f.xml")//book)}, doc("f.xml")//book/title }`,
		// Faults that must match byte for byte.
		`$nope`,
		`1 idiv 0`,
		`-("a")`,
		`unknownfn(1, 2)`,
		`concat("one")`,
		`execute at {"p"} { young() }`,
		`doc("missing://really")/x`,
	}
	for _, src := range queries {
		expectCompiled(t, docs, src)
	}
}

// TestCompiledDeadlineAbortsMidStream is the compiled twin of
// TestLazyDeadlineAbortsMidStream: compiled scans hit the shared stopCheck
// at the same ≤64-node granularity, so an expired deadline cuts a streamed
// compiled walk with the typed sentinel and a counted abort.
func TestCompiledDeadlineAbortsMidStream(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 200000; i++ {
		fmt.Fprintf(&sb, "<x>%d</x>", i)
	}
	sb.WriteString("</r>")
	e := NewEngine(mapResolver{"big.xml": sb.String()})
	e.Options.Compile = true
	q, err := xq.ParseQuery(`doc("big.xml")/r/x`)
	if err != nil {
		t.Fatal(err)
	}
	e.Deadline = time.Now()
	s, err := e.QuerySeq(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = s(func(xdm.Item) bool {
		n++
		return true
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded after %d items, got %v", n, err)
	}
	if e.StatsSnapshot().DeadlineAborts == 0 {
		t.Fatal("deadline abort not counted in Stats")
	}
}

// TestCompiledDeadlineInsideLoop: a compiled FLWOR pipeline (not just the
// axis scans) consults the budget, so a loop over an already-materialized
// sequence still aborts.
func TestCompiledDeadlineInsideLoop(t *testing.T) {
	e := NewEngine(mapResolver{})
	e.Options.Compile = true
	q, err := xq.ParseQuery(`declare function local:burn($n as xs:integer) as xs:integer
		{ if ($n <= 0) then 0 else local:burn($n - 1) };
		for $i in (1, 2, 3, 4, 5, 6, 7, 8) return local:burn(2000000)`)
	if err != nil {
		t.Fatal(err)
	}
	e.Deadline = time.Now().Add(2 * time.Millisecond)
	_, err = e.Query(q)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if e.StatsSnapshot().DeadlineAborts == 0 {
		t.Fatal("deadline abort not counted in Stats")
	}
}

// TestCompiledFunctionEntryPoints: the server-side function entry points
// honour Options.Compile and agree with the tree-walker, including the
// undeclared-function fault.
func TestCompiledFunctionEntryPoints(t *testing.T) {
	src := `declare function local:f($d as item()*) as item()* { for $x in $d//person return $x/child::name }; 1`
	docs := mapResolver{"f.xml": fuzzFixtureXML}
	arg := func(e *Engine) xdm.Sequence {
		d, err := e.Doc("f.xml")
		if err != nil {
			t.Fatal(err)
		}
		return xdm.Singleton(d.Root)
	}
	tw := NewEngine(docs)
	cc := NewEngine(docs)
	cc.Options.Compile = true
	q1, _ := xq.ParseQuery(src)
	q2, _ := xq.ParseQuery(src)
	twRes, twErr := tw.EvalFunction(q1, "local:f", []xdm.Sequence{arg(tw)})
	ccRes, ccErr := cc.EvalFunction(q2, "local:f", []xdm.Sequence{arg(cc)})
	compareModes(t, "function", src, twRes, twErr, ccRes, ccErr)
	if serialize(ccRes) == "" {
		t.Fatal("function returned nothing; fixture mismatch")
	}
	// Lazy entry point.
	s, err := cc.EvalFunctionSeqDeadline(q2, "local:f", []xdm.Sequence{arg(cc)}, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	var lazyRes xdm.Sequence
	if err := s(func(it xdm.Item) bool { lazyRes = append(lazyRes, it); return true }); err != nil {
		t.Fatal(err)
	}
	if serialize(lazyRes) != serialize(twRes) {
		t.Fatalf("lazy function diverged: %q vs %q", serialize(lazyRes), serialize(twRes))
	}
	// Undeclared-function fault text must match the tree-walker's.
	_, twErr = tw.EvalFunction(q1, "local:g", nil)
	_, ccErr = cc.EvalFunction(q2, "local:g", nil)
	if twErr == nil || ccErr == nil || twErr.Error() != ccErr.Error() {
		t.Fatalf("undeclared fault diverged: %v vs %v", twErr, ccErr)
	}
}

// TestCompiledArtifactShared: compilation happens once per query object; a
// second engine executing the same query reuses the cached Program instead
// of recompiling.
func TestCompiledArtifactShared(t *testing.T) {
	q, err := xq.ParseQuery(`for $i in (1, 2, 3) return $i * $i`)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(mapResolver{})
	e1.Options.Compile = true
	if _, err := e1.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := e1.StatsSnapshot().Compilations; got != 1 {
		t.Fatalf("first engine: %d compilations, want 1", got)
	}
	if _, err := e1.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := e1.StatsSnapshot().Compilations; got != 1 {
		t.Fatalf("re-execution recompiled: %d compilations", got)
	}
	e2 := NewEngine(mapResolver{})
	e2.Options.Compile = true
	if _, err := e2.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := e2.StatsSnapshot().Compilations; got != 0 {
		t.Fatalf("second engine recompiled a cached artifact: %d compilations", got)
	}
}
