package eval

// Runtime for compiled queries. compile.go lowers a normalized query into a
// Program: chains of pre-resolved closures over a flat slot frame. This file
// holds the runtime those closures execute against — the frame, the calling
// convention for declared functions, and the specialized path-step scanners.
//
// The correctness contract, enforced by FuzzCompiledVsTreeWalk: a compiled
// query produces byte-identical results AND byte-identical errors to the
// tree-walking evaluator. Every specialization below therefore mirrors the
// corresponding tree-walk routine exactly (same candidate order, same
// predicate numbering, same error strings); anything the compiler cannot
// prove safe falls back to the tree-walker itself (see fnCompiler.fallback),
// so divergence is structurally impossible outside the compiled subset.

import (
	"fmt"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// Options selects optional engine behaviors.
type Options struct {
	// Compile lowers queries into chains of pre-resolved closures before
	// execution (variables become frame slots, constants fold, downward path
	// steps become direct scans with fused predicates) instead of walking the
	// AST per evaluation. Results and errors are identical either way; only
	// speed changes. The compiled artifact is cached on the *xq.Query, so
	// every engine executing a shared plan reuses one compilation.
	Compile bool
}

// cexpr is a compiled expression: evaluate eagerly against a frame.
type cexpr func(*cframe) (xdm.Sequence, error)

// cseq is a compiled lazy expression: the twin of context.evalSeq. The
// returned xdm.Seq reads the frame at pull time, synchronously with the
// producing loop, so slot values are always the binding in scope.
type cseq func(*cframe) xdm.Seq

// cbool is a compiled boolean-valued expression (comparison, logic, boolean
// builtin): the predicate fast path that skips sequence materialization.
type cbool func(*cframe) (bool, error)

// cframe is the activation record of one compiled query or function call:
// variable slots resolved at compile time plus the dynamic focus. ctx carries
// the engine, static context and stopCheck; its vars chain is never used by
// compiled code (slots replace it) but is rebuilt on demand when a fallback
// closure re-enters the tree-walker.
type cframe struct {
	ctx   *context
	slots []xdm.Sequence
	item  xdm.Item
	pos   int
	size  int
}

// Program is the compiled artifact of one query: the compiled body (eager
// and lazy forms) plus every declared function. A Program is immutable after
// compilation and engine-independent — all engine state is read from the
// context a run is given — so one Program may execute concurrently on any
// number of engines.
type Program struct {
	nslots  int
	body    cexpr
	bodySeq cseq
	// order holds the declared functions in declaration order (the lookup
	// order of EvalFunctionDeadline); funcs indexes them by name/arity with
	// later declarations winning (the lookup rule of evalFunCall).
	order []*cfunc
	funcs map[string]*cfunc
}

// cfunc is one compiled declared function.
type cfunc struct {
	decl    *xq.FuncDecl
	nslots  int
	body    cexpr
	bodySeq cseq
}

// run evaluates the program body eagerly under ctx.
func (p *Program) run(ctx *context) (xdm.Sequence, error) {
	f := &cframe{ctx: ctx, slots: make([]xdm.Sequence, p.nslots)}
	return p.body(f)
}

// runSeq returns the program body as a lazy sequence; the frame is created at
// first pull, matching the nothing-runs-until-pulled contract of QuerySeq.
func (p *Program) runSeq(ctx *context) xdm.Seq {
	return func(yield func(xdm.Item) bool) error {
		f := &cframe{ctx: ctx, slots: make([]xdm.Sequence, p.nslots)}
		return p.bodySeq(f)(yield)
	}
}

// callFunction invokes a declared function by name and arity — the compiled
// counterpart of EvalFunctionDeadline's scan, in the same declaration order.
func (p *Program) callFunction(ctx *context, name string, args []xdm.Sequence) (xdm.Sequence, error) {
	for _, cf := range p.order {
		if cf.decl.Name == name && len(cf.decl.Params) == len(args) {
			return cf.call(ctx, args)
		}
	}
	return nil, fmt.Errorf("eval: function %s#%d not declared", name, len(args))
}

// callFunctionSeq is the lazy twin of callFunction.
func (p *Program) callFunctionSeq(ctx *context, name string, args []xdm.Sequence) (xdm.Seq, error) {
	for _, cf := range p.order {
		if cf.decl.Name == name && len(cf.decl.Params) == len(args) {
			return cf.callSeq(ctx, args)
		}
	}
	return nil, fmt.Errorf("eval: function %s#%d not declared", name, len(args))
}

// call runs a compiled declared function: parameters type-check into the
// first frame slots, the body runs, the result type-checks — exactly
// callDeclared with slots in place of a bound chain.
func (cf *cfunc) call(ctx *context, args []xdm.Sequence) (xdm.Sequence, error) {
	f := &cframe{ctx: ctx, slots: make([]xdm.Sequence, cf.nslots)}
	for i, p := range cf.decl.Params {
		if err := checkSeqType(args[i], p.Type); err != nil {
			return nil, fmt.Errorf("eval: %s($%s): %w", cf.decl.Name, p.Name, err)
		}
		f.slots[i] = args[i]
	}
	res, err := cf.body(f)
	if err != nil {
		return nil, err
	}
	if err := checkSeqType(res, cf.decl.Return); err != nil {
		return nil, fmt.Errorf("eval: %s result: %w", cf.decl.Name, err)
	}
	return res, nil
}

// callSeq mirrors callDeclaredSeq: parameters check eagerly (faults beat
// frames), then the body streams when the declared occurrence is `*` and
// materializes-then-checks otherwise.
func (cf *cfunc) callSeq(ctx *context, args []xdm.Sequence) (xdm.Seq, error) {
	for i, p := range cf.decl.Params {
		if err := checkSeqType(args[i], p.Type); err != nil {
			return nil, fmt.Errorf("eval: %s($%s): %w", cf.decl.Name, p.Name, err)
		}
	}
	newFrame := func() *cframe {
		f := &cframe{ctx: ctx, slots: make([]xdm.Sequence, cf.nslots)}
		copy(f.slots, args)
		return f
	}
	if cf.decl.Return.Occur != xq.OccurStar {
		return func(yield func(xdm.Item) bool) error {
			res, err := cf.body(newFrame())
			if err != nil {
				return err
			}
			if err := checkSeqType(res, cf.decl.Return); err != nil {
				return fmt.Errorf("eval: %s result: %w", cf.decl.Name, err)
			}
			for _, it := range res {
				if !yield(it) {
					return nil
				}
			}
			return nil
		}, nil
	}
	if cf.decl.Return.Item == "item()" || cf.decl.Return.Item == "" {
		return func(yield func(xdm.Item) bool) error {
			return cf.bodySeq(newFrame())(yield)
		}, nil
	}
	return func(yield func(xdm.Item) bool) error {
		var typeErr error
		err := cf.bodySeq(newFrame())(func(it xdm.Item) bool {
			if !itemMatches(it, cf.decl.Return.Item) {
				typeErr = fmt.Errorf("eval: %s result: item %v does not match type %s", cf.decl.Name, it, cf.decl.Return.Item)
				return false
			}
			return yield(it)
		})
		if err != nil {
			return err
		}
		return typeErr
	}, nil
}

// treeContext rebuilds a tree-walker context from the frame: the fallback
// bridge. The slot values of every binding in lexical scope become a frame
// chain (innermost first, the lookup order of context.lookup).
func (f *cframe) treeContext(sc *scope) *context {
	nc := *f.ctx
	nc.item, nc.pos, nc.size = f.item, f.pos, f.size
	nc.vars = f.frameChain(sc)
	return &nc
}

func (f *cframe) frameChain(sc *scope) *frame {
	if sc == nil {
		return nil
	}
	return &frame{name: sc.name, val: f.slots[sc.slot], next: f.frameChain(sc.next)}
}

// ------------------------------------------------------------- path runtime --

// cstep is one compiled path step: pre-resolved axis/test plus compiled
// predicates.
type cstep struct {
	axis       xq.Axis
	test       xq.NodeTest
	filter     bool
	preds      []cpred
	streamable bool
}

// cpred is one compiled predicate. When b is non-nil the predicate is
// provably boolean-valued (comparison, logic, boolean builtin): it is fused
// into the scan without the numeric-position test or a result sequence.
// Otherwise gen runs and the general rule applies (numeric singleton selects
// by position, anything else by effective boolean value).
type cpred struct {
	b   cbool
	gen cexpr
}

// runPath executes a compiled path — the mirror of evalPath, including the
// ping-pong scratch buffers.
func (f *cframe) runPath(input cexpr, steps []*cstep) (xdm.Sequence, error) {
	var cur xdm.Sequence
	switch {
	case input != nil:
		s, err := input(f)
		if err != nil {
			return nil, err
		}
		cur = s
	case f.item != nil:
		cur = xdm.Singleton(f.item)
	default:
		return nil, fmt.Errorf("eval: relative path with undefined context item")
	}
	var curNodes, spare []*xdm.Node
	haveNodes := false
	for _, st := range steps {
		if st.filter {
			if haveNodes {
				cur = xdm.NodeSeq(curNodes)
				haveNodes = false
			}
			filtered, err := f.runFilterItems(cur, st.preds)
			if err != nil {
				return nil, err
			}
			cur = filtered
			continue
		}
		nodes := curNodes
		if !haveNodes {
			var ok bool
			nodes, ok = cur.Nodes()
			if !ok {
				return nil, fmt.Errorf("eval: path step %s::%s applied to atomic value", st.axis, st.test)
			}
		}
		gathered, err := f.runStep(nodes, st, spare[:0])
		if err != nil {
			return nil, err
		}
		spare = nodes[:0]
		curNodes, haveNodes = gathered, true
	}
	if haveNodes {
		cur = xdm.NodeSeq(curNodes)
	}
	return cur, nil
}

// runStep maps one compiled non-filter step over its context nodes — the
// mirror of evalStep with the specialized axis scanners.
func (f *cframe) runStep(nodes []*xdm.Node, st *cstep, dst []*xdm.Node) ([]*xdm.Node, error) {
	gathered := dst
	for _, n := range nodes {
		start := len(gathered)
		var err error
		gathered, err = f.gatherAxis(gathered, n, st)
		if err != nil {
			return nil, err
		}
		if len(st.preds) > 0 {
			seg, err := f.runFilterPreds(gathered[start:], st.preds)
			if err != nil {
				return nil, err
			}
			gathered = gathered[:start+len(seg)]
		}
	}
	if len(nodes) > 1 {
		gathered = xdm.SortDocOrder(gathered)
	}
	return gathered, nil
}

// gatherAxis appends one context node's axis candidates to dst. The downward
// axes are compiled to direct scans over the frozen tree — child/attribute
// slice walks and the subtree scan, which enumerates exactly the pre-order
// interval [n.Pre(), n.Pre()+n.SubtreeSize()) — with the deadline check at
// per-node granularity, the budget contract compiled loops must keep (the
// tree-walk equivalent is one check per AST node per candidate via the
// predicate evaluation; axis gathering itself is the one place the compiled
// code checks *more* often, never less). Non-downward axes reuse
// appendAxisNodes wholesale.
func (f *cframe) gatherAxis(dst []*xdm.Node, n *xdm.Node, st *cstep) ([]*xdm.Node, error) {
	stop := f.ctx.stop
	switch st.axis {
	case xq.AxisChild:
		if n.Kind == xdm.AttributeNode {
			return dst, nil
		}
		for _, ch := range n.Children {
			if err := stop.check(); err != nil {
				return nil, err
			}
			if matchTest(ch, st.axis, st.test) {
				dst = append(dst, ch)
			}
		}
	case xq.AxisAttribute:
		for _, a := range n.Attrs {
			if err := stop.check(); err != nil {
				return nil, err
			}
			if matchTest(a, st.axis, st.test) {
				dst = append(dst, a)
			}
		}
	case xq.AxisSelf:
		if err := stop.check(); err != nil {
			return nil, err
		}
		if matchTest(n, st.axis, st.test) {
			dst = append(dst, n)
		}
	case xq.AxisDescendant:
		for _, ch := range n.Children {
			var err error
			dst, err = scanSubtree(dst, ch, st.axis, st.test, stop)
			if err != nil {
				return nil, err
			}
		}
	case xq.AxisDescendantOrSelf:
		return scanSubtree(dst, n, st.axis, st.test, stop)
	default:
		if err := stop.check(); err != nil {
			return nil, err
		}
		dst = appendAxisNodes(dst, n, st.axis, st.test)
	}
	return dst, nil
}

// scanSubtree appends n and its element/text descendants matching the test,
// in document (pre) order, checking the deadline per visited node.
func scanSubtree(dst []*xdm.Node, n *xdm.Node, axis xq.Axis, test xq.NodeTest, stop *stopCheck) ([]*xdm.Node, error) {
	if err := stop.check(); err != nil {
		return nil, err
	}
	if matchTest(n, axis, test) {
		dst = append(dst, n)
	}
	for _, ch := range n.Children {
		var err error
		dst, err = scanSubtree(dst, ch, axis, test, stop)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// runFilterPreds applies compiled step predicates to a candidate segment,
// compacting in place — the mirror of filterPreds, minus the per-candidate
// context allocation: the frame's focus is set and restored around each
// predicate evaluation.
func (f *cframe) runFilterPreds(nodes []*xdm.Node, preds []cpred) ([]*xdm.Node, error) {
	for _, pred := range preds {
		kept := nodes[:0]
		size := len(nodes)
		for i, n := range nodes {
			keep, err := f.evalPred(pred, n, i+1, size)
			if err != nil {
				return nil, err
			}
			if keep {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	return nodes, nil
}

// runFilterItems is the filter-step mirror of filterItems: positions count
// over the whole sequence per predicate layer.
func (f *cframe) runFilterItems(items xdm.Sequence, preds []cpred) (xdm.Sequence, error) {
	for _, pred := range preds {
		kept := xdm.Sequence{}
		size := len(items)
		for i, it := range items {
			keep, err := f.evalPred(pred, it, i+1, size)
			if err != nil {
				return nil, err
			}
			if keep {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	return items, nil
}

// evalPred decides one predicate candidate at the given focus. Fused boolean
// predicates skip the numeric-position rule — their value is provably a
// boolean singleton, which the general rule maps to its effective boolean
// value anyway. size 0 means "streaming, size unobservable" exactly as in
// evalStreamPred.
func (f *cframe) evalPred(pred cpred, it xdm.Item, pos, size int) (bool, error) {
	oi, op, os := f.item, f.pos, f.size
	f.item, f.pos, f.size = it, pos, size
	var keep bool
	var err error
	if pred.b != nil {
		keep, err = pred.b(f)
	} else {
		var s xdm.Sequence
		s, err = pred.gen(f)
		switch {
		case err != nil:
		default:
			numeric := false
			if len(s) == 1 {
				if a, isAtom := s[0].(xdm.Atomic); isAtom && a.IsNumeric() {
					numeric = true
					keep = int(a.Number()) == pos
				}
			}
			if !numeric {
				b, ok := s.EffectiveBoolean()
				if !ok {
					err = fmt.Errorf("eval: invalid predicate value")
				}
				keep = b
			}
		}
	}
	f.item, f.pos, f.size = oi, op, os
	return keep, err
}

// existsCompare decides a general comparison between the downward path rooted
// at n and pre-atomized constant atoms ca, streaming: every node the step
// chain reaches atomizes in place and compares against each constant, and the
// scan unwinds at the first satisfying pair. constLeft orients the pairs
// (constant on the left feeds CompareAtomics' first argument). The deadline
// is checked per visited node, as in gatherAxis.
func (f *cframe) existsCompare(n *xdm.Node, steps []*xq.Step, op xq.CompOp, ca []xdm.Atomic, constLeft bool) (bool, error) {
	st := steps[0]
	rest := steps[1:]
	check := func(m *xdm.Node) (bool, error) {
		if len(rest) > 0 {
			return f.existsCompare(m, rest, op, ca, constLeft)
		}
		a := xdm.NewUntyped(m.StringValue())
		for _, c := range ca {
			l, r := a, c
			if constLeft {
				l, r = c, a
			}
			if cmp, ok := xdm.CompareAtomics(l, r); ok && compareSatisfies(op, cmp) {
				return true, nil
			}
		}
		return false, nil
	}
	stop := f.ctx.stop
	switch st.Axis {
	case xq.AxisChild:
		if n.Kind == xdm.AttributeNode {
			return false, nil
		}
		for _, ch := range n.Children {
			if err := stop.check(); err != nil {
				return false, err
			}
			if matchTest(ch, st.Axis, st.Test) {
				if found, err := check(ch); err != nil || found {
					return found, err
				}
			}
		}
	case xq.AxisAttribute:
		for _, a := range n.Attrs {
			if err := stop.check(); err != nil {
				return false, err
			}
			if matchTest(a, st.Axis, st.Test) {
				if found, err := check(a); err != nil || found {
					return found, err
				}
			}
		}
	case xq.AxisSelf:
		if err := stop.check(); err != nil {
			return false, err
		}
		if matchTest(n, st.Axis, st.Test) {
			return check(n)
		}
	case xq.AxisDescendant:
		for _, ch := range n.Children {
			if found, err := scanSubtreeExists(ch, st, check, stop); err != nil || found {
				return found, err
			}
		}
	case xq.AxisDescendantOrSelf:
		return scanSubtreeExists(n, st, check, stop)
	}
	return false, nil
}

// scanSubtreeExists is scanSubtree with a short-circuiting visitor instead of
// an accumulating slice.
func scanSubtreeExists(n *xdm.Node, st *xq.Step, check func(*xdm.Node) (bool, error), stop *stopCheck) (bool, error) {
	if err := stop.check(); err != nil {
		return false, err
	}
	if matchTest(n, st.Axis, st.Test) {
		if found, err := check(n); err != nil || found {
			return found, err
		}
	}
	for _, ch := range n.Children {
		if found, err := scanSubtreeExists(ch, st, check, stop); err != nil || found {
			return found, err
		}
	}
	return false, nil
}

// streamStep streams a compiled final step — the mirror of streamStep/
// predSink in lazy.go, with compiled predicates. The axis walk itself is
// walkAxis, shared with the lazy tree-walker.
func (f *cframe) streamCompiledStep(nodes []*xdm.Node, st *cstep, yield func(xdm.Item) bool) error {
	for _, n := range nodes {
		sink := nodeSink(func(m *xdm.Node) (bool, error) {
			return yield(m), nil
		})
		for i := len(st.preds) - 1; i >= 0; i-- {
			pred, next := st.preds[i], sink
			pos := 0
			sink = func(m *xdm.Node) (bool, error) {
				pos++
				keep, err := f.evalPred(pred, m, pos, 0)
				if err != nil {
					return false, err
				}
				if !keep {
					return true, nil
				}
				return next(m)
			}
		}
		cont, err := f.ctx.walkAxis(n, st.axis, st.test, sink)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// streamFilterItems streams a compiled final filter step — the mirror of
// filterItemsSeq.
func (f *cframe) streamFilterItems(items xdm.Sequence, preds []cpred, yield func(xdm.Item) bool) error {
	sink := func(it xdm.Item) (bool, error) {
		return yield(it), nil
	}
	for i := len(preds) - 1; i >= 0; i-- {
		pred, next := preds[i], sink
		pos := 0
		sink = func(it xdm.Item) (bool, error) {
			pos++
			keep, err := f.evalPred(pred, it, pos, 0)
			if err != nil {
				return false, err
			}
			if !keep {
				return true, nil
			}
			return next(it)
		}
	}
	for _, it := range items {
		if err := f.ctx.stop.check(); err != nil {
			return err
		}
		cont, err := sink(it)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}
