package eval

import (
	"fmt"
	"math"
	"strings"

	"distxq/internal/xdm"
)

// builtin is one entry of the builtin function library. maxArgs -1 means
// variadic.
type builtin struct {
	minArgs, maxArgs int
	fn               func(*context, []xdm.Sequence) (xdm.Sequence, error)
}

var builtins map[string]builtin

func init() {
	builtins = map[string]builtin{
		"doc":        {1, 1, fnDoc},
		"collection": {1, 1, fnDoc}, // treated as doc(*) by the analyses (§IV)
		"root":       {0, 1, fnRoot},
		"id":         {1, 2, fnID},
		"idref":      {1, 2, fnIDRef},

		"base-uri":          {0, 1, fnBaseURI},
		"document-uri":      {1, 1, fnDocumentURI},
		"xrpc:base-uri":     {1, 1, fnBaseURI},
		"xrpc:document-uri": {1, 1, fnDocumentURI},
		"static-base-uri":   {0, 0, fnStaticBaseURI},
		"default-collation": {0, 0, fnDefaultCollation},
		"current-dateTime":  {0, 0, fnCurrentDateTime},

		"name":       {1, 1, fnName},
		"local-name": {1, 1, fnLocalName},
		"position":   {0, 0, fnPosition},
		"last":       {0, 0, fnLast},

		"string":          {1, 1, fnString},
		"number":          {1, 1, fnNumber},
		"data":            {1, 1, fnData},
		"concat":          {2, -1, fnConcat},
		"string-join":     {2, 2, fnStringJoin},
		"contains":        {2, 2, fnContains},
		"starts-with":     {2, 2, fnStartsWith},
		"substring":       {2, 3, fnSubstring},
		"string-length":   {1, 1, fnStringLength},
		"normalize-space": {1, 1, fnNormalizeSpace},
		"upper-case":      {1, 1, fnUpperCase},
		"lower-case":      {1, 1, fnLowerCase},

		"count":           {1, 1, fnCount},
		"empty":           {1, 1, fnEmpty},
		"exists":          {1, 1, fnExists},
		"not":             {1, 1, fnNot},
		"boolean":         {1, 1, fnBoolean},
		"true":            {0, 0, fnTrue},
		"false":           {0, 0, fnFalse},
		"deep-equal":      {2, 2, fnDeepEqual},
		"distinct-values": {1, 1, fnDistinctValues},
		"reverse":         {1, 1, fnReverse},
		"subsequence":     {2, 3, fnSubsequence},
		"exactly-one":     {1, 1, fnExactlyOne},
		"zero-or-one":     {1, 1, fnZeroOrOne},

		"sum":     {1, 1, fnSum},
		"avg":     {1, 1, fnAvg},
		"min":     {1, 1, fnMinMax(false)},
		"max":     {1, 1, fnMinMax(true)},
		"floor":   {1, 1, fnFloor},
		"ceiling": {1, 1, fnCeiling},
		"round":   {1, 1, fnRound},
		"abs":     {1, 1, fnAbs},
	}
}

func fnDoc(c *context, args []xdm.Sequence) (xdm.Sequence, error) {
	uri, err := singletonString(args[0], "doc() argument")
	if err != nil {
		return nil, err
	}
	d, err := c.eng.Doc(uri)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(d.Root), nil
}

func fnRoot(c *context, args []xdm.Sequence) (xdm.Sequence, error) {
	var n *xdm.Node
	if len(args) == 0 {
		cn, ok := c.item.(*xdm.Node)
		if !ok {
			return nil, fmt.Errorf("eval: root() without node context item")
		}
		n = cn
	} else {
		if len(args[0]) == 0 {
			return xdm.EmptySequence, nil
		}
		cn, ok := args[0][0].(*xdm.Node)
		if !ok {
			return nil, fmt.Errorf("eval: root() argument must be a node")
		}
		n = cn
	}
	return xdm.Singleton(n.RootNode()), nil
}

// fnID returns elements having an id attribute equal to any of the given
// values; the optional second argument supplies the document (any node of
// it). This engine treats attributes named "id" or "xml:id" as ID-typed.
func fnID(c *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return idLookup(c, args, []string{"id", "xml:id"})
}

// fnIDRef is the IDREF counterpart, matching attributes named idref/idrefs.
func fnIDRef(c *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return idLookup(c, args, []string{"idref", "idrefs"})
}

func idLookup(c *context, args []xdm.Sequence, attrNames []string) (xdm.Sequence, error) {
	want := map[string]bool{}
	for _, a := range args[0].Atomize() {
		for _, tok := range strings.Fields(a.ItemString()) {
			want[tok] = true
		}
	}
	var start *xdm.Node
	if len(args) == 2 && len(args[1]) == 1 {
		if n, ok := args[1][0].(*xdm.Node); ok {
			start = n
		}
	}
	if start == nil {
		if n, ok := c.item.(*xdm.Node); ok {
			start = n
		} else {
			return nil, fmt.Errorf("eval: id()/idref() requires a node context")
		}
	}
	root := start.RootNode()
	var out []*xdm.Node
	root.WalkDescendants(func(m *xdm.Node) bool {
		for _, an := range attrNames {
			if a := m.Attr(an); a != nil {
				for _, tok := range strings.Fields(a.Text) {
					if want[tok] {
						out = append(out, m)
						return true
					}
				}
			}
		}
		return true
	})
	return xdm.NodeSeq(out), nil
}

func fnBaseURI(c *context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args) == 0 || len(args[0]) == 0 {
		return xdm.Singleton(xdm.NewString(c.static.BaseURI)), nil
	}
	n, ok := args[0][0].(*xdm.Node)
	if !ok {
		return nil, fmt.Errorf("eval: base-uri() argument must be a node")
	}
	// XRPC Problem 5 class 2: shipped nodes carry their original base URI as
	// a node property; xrpc:base-uri consults it before the document URI.
	for m := n; m != nil; m = m.Parent {
		if m.BaseURI != "" {
			return xdm.Singleton(xdm.NewString(m.BaseURI)), nil
		}
	}
	if n.Doc != nil && n.Doc.URI != "" {
		return xdm.Singleton(xdm.NewString(n.Doc.URI)), nil
	}
	return xdm.EmptySequence, nil
}

func fnDocumentURI(c *context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return xdm.EmptySequence, nil
	}
	n, ok := args[0][0].(*xdm.Node)
	if !ok || n.Kind != xdm.DocumentNode {
		return xdm.EmptySequence, nil
	}
	if n.BaseURI != "" {
		return xdm.Singleton(xdm.NewString(n.BaseURI)), nil
	}
	if n.Doc != nil && n.Doc.URI != "" {
		return xdm.Singleton(xdm.NewString(n.Doc.URI)), nil
	}
	return xdm.EmptySequence, nil
}

func fnStaticBaseURI(c *context, _ []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewString(c.static.BaseURI)), nil
}

func fnDefaultCollation(c *context, _ []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewString(c.static.DefaultCollation)), nil
}

func fnCurrentDateTime(c *context, _ []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewString(c.static.CurrentDateTime)), nil
}

// fnPosition/fnLast expose the context position and size inside predicates
// (the paper's XCore keeps consecutive steps fused when position() is absent;
// supporting it in predicates does not affect the decomposition framework).
func fnPosition(c *context, _ []xdm.Sequence) (xdm.Sequence, error) {
	if c.pos == 0 {
		return nil, fmt.Errorf("eval: position() outside a predicate")
	}
	return xdm.Singleton(xdm.NewInteger(int64(c.pos))), nil
}

func fnLast(c *context, _ []xdm.Sequence) (xdm.Sequence, error) {
	if c.size == 0 {
		return nil, fmt.Errorf("eval: last() outside a predicate")
	}
	return xdm.Singleton(xdm.NewInteger(int64(c.size))), nil
}

func fnName(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return xdm.Singleton(xdm.NewString("")), nil
	}
	n, ok := args[0][0].(*xdm.Node)
	if !ok {
		return nil, fmt.Errorf("eval: name() argument must be a node")
	}
	return xdm.Singleton(xdm.NewString(n.Name)), nil
}

func fnLocalName(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return xdm.Singleton(xdm.NewString("")), nil
	}
	n, ok := args[0][0].(*xdm.Node)
	if !ok {
		return nil, fmt.Errorf("eval: local-name() argument must be a node")
	}
	name := n.Name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[i+1:]
	}
	return xdm.Singleton(xdm.NewString(name)), nil
}

func fnString(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return xdm.Singleton(xdm.NewString("")), nil
	}
	return xdm.Singleton(xdm.NewString(args[0][0].ItemString())), nil
}

func fnNumber(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	atoms := args[0].Atomize()
	if len(atoms) == 0 {
		return xdm.Singleton(xdm.NewDouble(math.NaN())), nil
	}
	return xdm.Singleton(xdm.NewDouble(atoms[0].Number())), nil
}

func fnData(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	atoms := args[0].Atomize()
	out := make(xdm.Sequence, len(atoms))
	for i, a := range atoms {
		out[i] = a
	}
	return out, nil
}

func fnConcat(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	var sb strings.Builder
	for _, a := range args {
		if len(a) > 0 {
			sb.WriteString(a[0].ItemString())
		}
	}
	return xdm.Singleton(xdm.NewString(sb.String())), nil
}

func fnStringJoin(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	sep, err := singletonString(args[1], "string-join separator")
	if err != nil {
		return nil, err
	}
	parts := make([]string, 0, len(args[0]))
	for _, a := range args[0].Atomize() {
		parts = append(parts, a.ItemString())
	}
	return xdm.Singleton(xdm.NewString(strings.Join(parts, sep))), nil
}

func fnContains(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	s := seqString(args[0])
	sub := seqString(args[1])
	return xdm.Singleton(xdm.NewBoolean(strings.Contains(s, sub))), nil
}

func fnStartsWith(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewBoolean(
		strings.HasPrefix(seqString(args[0]), seqString(args[1])))), nil
}

func fnSubstring(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	s := []rune(seqString(args[0]))
	startAtoms := args[1].Atomize()
	if len(startAtoms) == 0 {
		return xdm.Singleton(xdm.NewString("")), nil
	}
	start := int(math.Round(startAtoms[0].Number()))
	end := len(s) + 1
	if len(args) == 3 {
		lenAtoms := args[2].Atomize()
		if len(lenAtoms) > 0 {
			end = start + int(math.Round(lenAtoms[0].Number()))
		}
	}
	lo := max(start, 1)
	hi := min(end, len(s)+1)
	if lo >= hi {
		return xdm.Singleton(xdm.NewString("")), nil
	}
	return xdm.Singleton(xdm.NewString(string(s[lo-1 : hi-1]))), nil
}

func fnStringLength(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewInteger(int64(len([]rune(seqString(args[0])))))), nil
}

func fnNormalizeSpace(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewString(strings.Join(strings.Fields(seqString(args[0])), " "))), nil
}

func fnUpperCase(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewString(strings.ToUpper(seqString(args[0])))), nil
}

func fnLowerCase(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewString(strings.ToLower(seqString(args[0])))), nil
}

func fnCount(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewInteger(int64(len(args[0])))), nil
}

func fnEmpty(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewBoolean(len(args[0]) == 0)), nil
}

func fnExists(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewBoolean(len(args[0]) > 0)), nil
}

func fnNot(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	b, ok := args[0].EffectiveBoolean()
	if !ok {
		return nil, fmt.Errorf("eval: invalid effective boolean in not()")
	}
	return xdm.Singleton(xdm.NewBoolean(!b)), nil
}

func fnBoolean(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	b, ok := args[0].EffectiveBoolean()
	if !ok {
		return nil, fmt.Errorf("eval: invalid effective boolean in boolean()")
	}
	return xdm.Singleton(xdm.NewBoolean(b)), nil
}

func fnTrue(_ *context, _ []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewBoolean(true)), nil
}

func fnFalse(_ *context, _ []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewBoolean(false)), nil
}

func fnDeepEqual(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.NewBoolean(xdm.DeepEqualSeq(args[0], args[1]))), nil
}

func fnDistinctValues(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	seen := map[string]bool{}
	out := xdm.Sequence{}
	for _, a := range args[0].Atomize() {
		key := a.T.String() + "\x00" + a.ItemString()
		if a.IsNumeric() || a.T == xdm.TUntyped {
			key = "num\x00" + xdm.FormatDouble(a.Number())
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, a)
		}
	}
	return out, nil
}

func fnReverse(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	in := args[0]
	out := make(xdm.Sequence, len(in))
	for i, it := range in {
		out[len(in)-1-i] = it
	}
	return out, nil
}

func fnSubsequence(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	in := args[0]
	startAtoms := args[1].Atomize()
	if len(startAtoms) == 0 {
		return xdm.EmptySequence, nil
	}
	start := int(math.Round(startAtoms[0].Number()))
	end := len(in) + 1
	if len(args) == 3 {
		lenAtoms := args[2].Atomize()
		if len(lenAtoms) > 0 {
			end = start + int(math.Round(lenAtoms[0].Number()))
		}
	}
	lo := max(start, 1)
	hi := min(end, len(in)+1)
	if lo >= hi {
		return xdm.EmptySequence, nil
	}
	return in[lo-1 : hi-1], nil
}

func fnExactlyOne(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) != 1 {
		return nil, fmt.Errorf("eval: exactly-one() got %d items", len(args[0]))
	}
	return args[0], nil
}

func fnZeroOrOne(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) > 1 {
		return nil, fmt.Errorf("eval: zero-or-one() got %d items", len(args[0]))
	}
	return args[0], nil
}

func fnSum(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	allInt := true
	var fi int64
	var ff float64
	for _, a := range args[0].Atomize() {
		if a.T == xdm.TInteger {
			fi += a.I
		} else {
			allInt = false
		}
		ff += a.Number()
	}
	if allInt {
		return xdm.Singleton(xdm.NewInteger(fi)), nil
	}
	return xdm.Singleton(xdm.NewDouble(ff)), nil
}

func fnAvg(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	atoms := args[0].Atomize()
	if len(atoms) == 0 {
		return xdm.EmptySequence, nil
	}
	var sum float64
	for _, a := range atoms {
		sum += a.Number()
	}
	return xdm.Singleton(xdm.NewDouble(sum / float64(len(atoms)))), nil
}

func fnMinMax(wantMax bool) func(*context, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
		atoms := args[0].Atomize()
		if len(atoms) == 0 {
			return xdm.EmptySequence, nil
		}
		best := atoms[0]
		for _, a := range atoms[1:] {
			cmp, ok := xdm.CompareAtomics(a, best)
			if !ok {
				return nil, fmt.Errorf("eval: min()/max() over incomparable values")
			}
			if (wantMax && cmp > 0) || (!wantMax && cmp < 0) {
				best = a
			}
		}
		return xdm.Singleton(best), nil
	}
}

func fnFloor(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return numericUnary(args[0], math.Floor)
}

func fnCeiling(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return numericUnary(args[0], math.Ceil)
}

func fnRound(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return numericUnary(args[0], math.Round)
}

func fnAbs(_ *context, args []xdm.Sequence) (xdm.Sequence, error) {
	return numericUnary(args[0], math.Abs)
}

func numericUnary(s xdm.Sequence, f func(float64) float64) (xdm.Sequence, error) {
	atoms := s.Atomize()
	if len(atoms) == 0 {
		return xdm.EmptySequence, nil
	}
	if atoms[0].T == xdm.TInteger {
		return xdm.Singleton(xdm.NewInteger(int64(f(float64(atoms[0].I))))), nil
	}
	return xdm.Singleton(xdm.NewDouble(f(atoms[0].Number()))), nil
}

func seqString(s xdm.Sequence) string {
	if len(s) == 0 {
		return ""
	}
	return s[0].ItemString()
}
