// Package eval implements a tree-walking evaluator for the xq dialect over
// the xdm data model. It provides the local XQuery engine that peers run, the
// document resolver abstraction (which is where data-shipping vs. function-
// shipping strategies plug in), and the RemoteCaller hook through which
// XRPCExpr nodes perform remote procedure calls.
//
// The layer's contract: Engine evaluates a normalized query exactly per the
// xq semantics, resolving fn:doc through its Resolver (with single-flighted
// caching, so equal URIs observe equal node identities) and delegating
// every execute-at to its RemoteCaller. The caller hierarchy is optional
// capability detection: a plain RemoteCaller dispatches sequentially, a
// ScatterCaller dispatches a variable-target loop as one concurrent wave of
// per-peer Bulk RPCs (with Engine.Replicas naming failover copies per
// target), and a StreamCaller additionally yields per-lane results
// incrementally; whichever is plugged in, gathered results are identical
// and arrive in loop order. Evaluation is deterministic — the property the
// fault-tolerance layer relies on when it gathers a replica's answer in
// place of a dead primary's.
package eval

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// ErrDeadlineExceeded is the canonical per-query budget fault: an evaluation
// aborted because the originator's deadline passed. Every layer above —
// xrpc lanes, sessions, the federation service — reports budget expiry as an
// error wrapping this one (errors.Is), never as a bare context.Canceled, so
// callers can tell "out of time" from "torn down because something else
// failed".
var ErrDeadlineExceeded = errors.New("eval: query deadline exceeded")

// Resolver turns a document URI into a document. Implementations decide what
// xrpc:// URIs mean: a data-shipping resolver fetches the whole remote
// document; a peer-local resolver serves its own store.
type Resolver interface {
	ResolveDoc(uri string) (*xdm.Document, error)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(uri string) (*xdm.Document, error)

// ResolveDoc implements Resolver.
func (f ResolverFunc) ResolveDoc(uri string) (*xdm.Document, error) { return f(uri) }

// RemoteCaller executes a decomposed subquery on a remote peer. The xrpc
// package provides the real implementation; tests may supply fakes.
type RemoteCaller interface {
	// CallRemote ships x.Body to target and returns the result sequence.
	// params holds the evaluated values of x.Params in order.
	CallRemote(target string, x *xq.XRPCExpr, params []xdm.Sequence) (xdm.Sequence, error)
	// CallRemoteBulk performs Bulk RPC: one network interaction carrying
	// the parameter bindings of every loop iteration. It returns one result
	// sequence per iteration.
	CallRemoteBulk(target string, x *xq.XRPCExpr, iterations [][]xdm.Sequence) ([]xdm.Sequence, error)
}

// ScatterBatch groups the loop iterations bound for one destination peer of
// a variable-target loop (`for $p in $peers return execute at $p {...}`).
// Iterations appear in original loop order relative to each other.
type ScatterBatch struct {
	Target     string
	Iterations [][]xdm.Sequence
	// Replicas lists, in failover order, peers holding data equivalent to
	// Target's — a fault-tolerant dispatcher may re-issue (or hedge) the
	// batch to them and gather the first response instead of failing the
	// query. The evaluator fills it from Engine.Replicas.
	Replicas []string
}

// ScatterCaller is an optional RemoteCaller extension: an implementation
// that can dispatch one Bulk RPC per distinct peer concurrently (scatter-
// gather). Results and errors are positional per batch; a batch's result
// holds one sequence per iteration. Implementations must not fail the whole
// wave because one peer failed — per-peer errors travel in the error slice.
// When the configured RemoteCaller does not implement ScatterCaller the
// evaluator falls back to dispatching batches sequentially.
type ScatterCaller interface {
	CallRemoteScatter(x *xq.XRPCExpr, batches []ScatterBatch) ([][]xdm.Sequence, []error)
}

// StreamChunk is one increment of a streamed scatter lane: a run of
// consecutive result items belonging to one iteration of the lane's batch.
// A lane yields chunks with nondecreasing Iteration (all chunks of an
// iteration precede the first chunk of the next), every iteration of the
// batch appears in at least one chunk (possibly with an empty Items run),
// and the lane's channel is closed after the final chunk. A chunk with Err
// set is terminal for the lane: the batch failed and no further chunks
// follow.
type StreamChunk struct {
	// Iteration indexes into the batch's Iterations.
	Iteration int
	// Items is the next run of result items of that iteration.
	Items xdm.Sequence
	// Err, when non-nil, reports the lane's failure (terminal).
	Err error
}

// StreamCaller is an optional ScatterCaller extension: dispatch like
// CallRemoteScatter, but yield each batch's results incrementally over a
// bounded channel per batch, so the evaluator can process finished lanes
// while slower peers are still computing and transferring. The returned
// cancel function must release every in-flight lane (producers blocked on a
// full channel included); the consumer calls it once it stops reading —
// whether it drained every lane or aborted early on an error.
type StreamCaller interface {
	CallRemoteScatterStream(x *xq.XRPCExpr, batches []ScatterBatch) (lanes []<-chan StreamChunk, cancel func())
}

// StaticContext carries the static-context values that XRPC propagates to
// remote peers (Problem 5, class 1).
type StaticContext struct {
	BaseURI          string
	DefaultCollation string
	CurrentDateTime  string
}

// DefaultStatic returns the static context used when none is configured.
func DefaultStatic() StaticContext {
	return StaticContext{
		BaseURI:          "local:///",
		DefaultCollation: "http://www.w3.org/2005/xpath-functions/collation/codepoint",
		CurrentDateTime:  "2009-01-01T00:00:00Z",
	}
}

// Engine evaluates queries. An Engine is safe for concurrent use when its
// Resolver and Remote are.
type Engine struct {
	Resolver Resolver
	Remote   RemoteCaller
	Static   StaticContext
	// Options selects evaluation-strategy knobs; the zero value is the plain
	// tree-walker.
	Options Options
	// Replicas maps a scatter target peer to its ordered failover replicas:
	// peers holding an equivalent copy of the target's data (same documents
	// under the same paths), so a fault-tolerant RemoteCaller can re-route a
	// failed or slow scatter lane without changing the query result.
	// Sessions derive it from replica-aware shard maps; set it before
	// queries dispatch.
	Replicas map[string][]string
	// ReplicaRoutes maps a synthesized scatter call to its own target →
	// replicas routing, overriding Replicas for that call's lanes. Two shard
	// maps may assign the same primary peer different failover orders — one
	// per logical document — and per-expression routes keep each scattered
	// loop failing over within its own document's copies (per-(target,
	// logical-document) replica routing). Sessions fill it from the plan's
	// shard decisions.
	ReplicaRoutes map[*xq.XRPCExpr]map[string][]string
	// Deadline, when non-zero, bounds every evaluation started through this
	// engine: the tree-walker checks it periodically and aborts with
	// ErrDeadlineExceeded once it passes. Sessions set it on their
	// query-local engine from the query budget; peers serving many requests
	// use the per-call EvalFunctionDeadline instead.
	Deadline time.Time
	// TraceSpan, when active, is the span this engine's evaluation records
	// under — sessions set it on their query-local engine so compile work
	// shows up in the query's trace. The zero value disables recording.
	TraceSpan trace.SpanRef

	mu       sync.Mutex
	docCache map[string]*docEntry
	logical  map[string]func() (*xdm.Document, error)

	// Stats counts work done, for the benchmark harness. Guarded by mu
	// while queries are in flight; read it via StatsSnapshot.
	Stats Stats
}

// Stats accumulates evaluation counters.
type Stats struct {
	DocsResolved int
	RemoteCalls  int
	BulkCalls    int
	// ScatterWaves counts variable-target loops dispatched as one
	// concurrent wave of per-peer Bulk RPCs.
	ScatterWaves int
	// StreamedWaves counts the scatter waves consumed incrementally through
	// a StreamCaller (a subset of ScatterWaves).
	StreamedWaves int
	// DeadlineAborts counts evaluations this engine cut short because their
	// deadline passed — on a peer, server-side work abandoned because the
	// originator's budget expired (the observable half of deadline
	// propagation).
	DeadlineAborts int
	// Compilations counts queries this engine lowered to closure chains (a
	// cached Program on the query does not count: compilation happened on
	// another engine or an earlier call).
	Compilations int
}

// Add accumulates another counter snapshot, fieldwise.
func (s *Stats) Add(o Stats) {
	s.DocsResolved += o.DocsResolved
	s.RemoteCalls += o.RemoteCalls
	s.BulkCalls += o.BulkCalls
	s.ScatterWaves += o.ScatterWaves
	s.StreamedWaves += o.StreamedWaves
	s.DeadlineAborts += o.DeadlineAborts
	s.Compilations += o.Compilations
}

// StatsSink aggregates evaluation counters across query-local engines: a
// daemon creates one engine per query (trace threading stays race-free that
// way), so a process-wide /metrics surface needs somewhere durable for the
// counters to land once each engine retires. Nil-safe, like Metrics.
type StatsSink struct {
	mu sync.Mutex
	s  Stats
}

// Add folds one engine's final counters into the sink.
func (k *StatsSink) Add(o Stats) {
	if k == nil {
		return
	}
	k.mu.Lock()
	k.s.Add(o)
	k.mu.Unlock()
}

// Snapshot returns the accumulated counters.
func (k *StatsSink) Snapshot() Stats {
	if k == nil {
		return Stats{}
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.s
}

// docEntry is one single-flight slot of the document cache: concurrent
// doc() calls for the same URI must observe the same node identities, so
// the first caller resolves and every other caller waits on the same entry.
type docEntry struct {
	once sync.Once
	doc  *xdm.Document
	err  error
}

// NewEngine returns an engine with the given resolver and no remote caller.
func NewEngine(r Resolver) *Engine {
	return &Engine{Resolver: r, Static: DefaultStatic()}
}

// RegisterLogical installs a builder for a logical document URI: fn:doc(uri)
// resolves by invoking the builder instead of the Resolver, cached and
// single-flighted like any other document. Sessions over sharded federations
// use it so a logical document that could not be rewritten into the scatter
// form still evaluates — the builder materializes the union of shards.
// Registration must happen before queries resolve the URI.
func (e *Engine) RegisterLogical(uri string, build func() (*xdm.Document, error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.logical == nil {
		e.logical = map[string]func() (*xdm.Document, error){}
	}
	e.logical[uri] = build
}

// replicasFor resolves the failover replicas of one scatter lane: the
// call's own route table when the session installed one (its absence of a
// target means that shard is unreplicated — falling through to another
// document's merged entry would fail over to copies of the wrong data),
// otherwise the target-keyed Replicas map.
func (e *Engine) replicasFor(x *xq.XRPCExpr, target string) []string {
	if m, ok := e.ReplicaRoutes[x]; ok {
		return m[target]
	}
	return e.Replicas[target]
}

// Doc resolves and caches a document by URI. Two fn:doc calls for the same
// URI observe the same node identities, as XQuery requires — including two
// concurrent calls, which single-flight through one cache entry instead of
// racing to resolve twice. Failed resolutions are not cached.
func (e *Engine) Doc(uri string) (*xdm.Document, error) {
	e.mu.Lock()
	if e.docCache == nil {
		e.docCache = map[string]*docEntry{}
	}
	ent, ok := e.docCache[uri]
	if !ok {
		ent = &docEntry{}
		e.docCache[uri] = ent
	}
	build := e.logical[uri]
	e.mu.Unlock()
	ent.once.Do(func() {
		// Pre-set the error so a panicking resolver (recovered further up,
		// e.g. by net/http) cannot leave a done entry with doc=nil, err=nil.
		ent.err = fmt.Errorf("eval: doc(%q): resolution did not complete", uri)
		resolve := func(uri string) (*xdm.Document, error) {
			if build != nil {
				return build()
			}
			if e.Resolver == nil {
				return nil, fmt.Errorf("no resolver configured")
			}
			return e.Resolver.ResolveDoc(uri)
		}
		d, err := resolve(uri)
		if err != nil {
			ent.err = fmt.Errorf("eval: doc(%q): %w", uri, err)
			return
		}
		ent.doc, ent.err = d, nil
		e.mu.Lock()
		e.Stats.DocsResolved++
		e.mu.Unlock()
	})
	if ent.err != nil {
		e.mu.Lock()
		if e.docCache[uri] == ent {
			delete(e.docCache, uri)
		}
		e.mu.Unlock()
	}
	return ent.doc, ent.err
}

// ResetDocCache clears cached documents (used between benchmark runs).
func (e *Engine) ResetDocCache() {
	e.mu.Lock()
	e.docCache = nil
	e.Stats = Stats{}
	e.mu.Unlock()
}

// StatsSnapshot returns a consistent copy of the evaluation counters; use it
// instead of reading Stats directly while queries may be in flight.
func (e *Engine) StatsSnapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Stats
}

// Query normalizes and evaluates a parsed query. It is QuerySeq plus
// Materialize: evaluation runs through the same lazy producer paths the
// streaming server pulls from, drained eagerly.
func (e *Engine) Query(q *xq.Query) (xdm.Sequence, error) {
	s, err := e.QuerySeq(q)
	if err != nil {
		return nil, err
	}
	return s.Materialize()
}

// QueryString parses, normalizes and evaluates query source text.
func (e *Engine) QueryString(src string) (xdm.Sequence, error) {
	q, err := xq.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.Query(q)
}

// EvalFunction evaluates a declared function with the given arguments; the
// XRPC server side uses it to run shipped functions.
func (e *Engine) EvalFunction(q *xq.Query, name string, args []xdm.Sequence) (xdm.Sequence, error) {
	return e.EvalFunctionStatic(q, name, args, nil)
}

// EvalFunctionStatic evaluates a declared function under an optional static
// context override — how XRPC propagates the caller's static-base-uri,
// default-collation and current-dateTime to the remote peer (Problem 5
// class 1).
func (e *Engine) EvalFunctionStatic(q *xq.Query, name string, args []xdm.Sequence, static *StaticContext) (xdm.Sequence, error) {
	return e.EvalFunctionDeadline(q, name, args, static, time.Time{})
}

// EvalFunctionDeadline is EvalFunctionStatic bounded by a per-call deadline:
// once it passes, the tree-walk aborts with ErrDeadlineExceeded and the
// engine's DeadlineAborts counter records the abandoned work. A zero
// deadline means unbounded. This is the server-side half of budget
// propagation — a peer stops evaluating a shipped function the moment the
// originator's budget expires instead of computing a result nobody will
// gather.
func (e *Engine) EvalFunctionDeadline(q *xq.Query, name string, args []xdm.Sequence, static *StaticContext, deadline time.Time) (xdm.Sequence, error) {
	if err := xq.Normalize(q); err != nil {
		return nil, err
	}
	ctx := e.newContext(q.Funcs)
	if static != nil {
		ctx.static = *static
	}
	if !deadline.IsZero() {
		ctx.stop = &stopCheck{eng: e, deadline: deadline}
	}
	if e.Options.Compile {
		p, err := e.program(q)
		if err != nil {
			return nil, err
		}
		return p.callFunction(ctx, name, args)
	}
	for _, f := range q.Funcs {
		if f.Name == name && len(f.Params) == len(args) {
			return ctx.callDeclared(f, args)
		}
	}
	return nil, fmt.Errorf("eval: function %s#%d not declared", name, len(args))
}

// EvalFunctionSeqDeadline is the lazy twin of EvalFunctionDeadline: it
// returns the declared function's result as a pull-based sequence without
// evaluating the body first, so the streaming server can emit chunk frames
// while the call is still computing. Argument types are checked eagerly
// (faults beat frames); the result type streams per item when the declared
// occurrence is `*` and falls back to materialize-then-check otherwise,
// since occurrence constraints need the whole result.
func (e *Engine) EvalFunctionSeqDeadline(q *xq.Query, name string, args []xdm.Sequence, static *StaticContext, deadline time.Time) (xdm.Seq, error) {
	if err := xq.Normalize(q); err != nil {
		return nil, err
	}
	ctx := e.newContext(q.Funcs)
	if static != nil {
		ctx.static = *static
	}
	if !deadline.IsZero() {
		ctx.stop = &stopCheck{eng: e, deadline: deadline}
	}
	if e.Options.Compile {
		p, err := e.program(q)
		if err != nil {
			return nil, err
		}
		return p.callFunctionSeq(ctx, name, args)
	}
	for _, f := range q.Funcs {
		if f.Name == name && len(f.Params) == len(args) {
			return ctx.callDeclaredSeq(f, args)
		}
	}
	return nil, fmt.Errorf("eval: function %s#%d not declared", name, len(args))
}

// program returns the query's compiled Program, compiling (and caching the
// artifact on the query) on first use. The Program is engine-independent —
// all engine state flows in through the execution context — so engines
// sharing a query share one compilation.
func (e *Engine) program(q *xq.Query) (*Program, error) {
	if p, ok := q.CompiledArtifact().(*Program); ok {
		return p, nil
	}
	sp := e.TraceSpan.Child("compile")
	p, err := CompileQuery(q)
	sp.EndErr(err)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.Stats.Compilations++
	e.mu.Unlock()
	return p, nil
}

func (e *Engine) newContext(funcs []*xq.FuncDecl) *context {
	fm := map[string]*xq.FuncDecl{}
	for _, f := range funcs {
		fm[fmt.Sprintf("%s/%d", f.Name, len(f.Params))] = f
	}
	c := &context{eng: e, funcs: fm, static: e.Static}
	if !e.Deadline.IsZero() {
		c.stop = &stopCheck{eng: e, deadline: e.Deadline}
	}
	return c
}

// stopCheck interrupts a tree-walk at its deadline. Checking the clock at
// every node would dominate cheap expressions, so the walk only consults
// time.Now every stopCheckEvery nodes — a bounded-staleness compromise that
// keeps overhead invisible while still cutting runaway evaluations within
// microseconds of the deadline. One stopCheck is shared (by pointer) across
// every derived context of an evaluation, so the node count is global to the
// query, not per subtree.
type stopCheck struct {
	eng      *Engine
	deadline time.Time
	n        uint
	aborted  bool
}

// stopCheckEvery is the node-count stride between clock reads.
const stopCheckEvery = 64

func (s *stopCheck) check() error {
	if s == nil {
		return nil
	}
	if s.aborted {
		return fmt.Errorf("eval: %w", ErrDeadlineExceeded)
	}
	s.n++
	if s.n%stopCheckEvery != 0 {
		return nil
	}
	if time.Now().Before(s.deadline) {
		return nil
	}
	s.aborted = true
	if s.eng != nil {
		s.eng.mu.Lock()
		s.eng.Stats.DeadlineAborts++
		s.eng.mu.Unlock()
	}
	return fmt.Errorf("eval: %w", ErrDeadlineExceeded)
}

// frame is one variable binding in a linked environment.
type frame struct {
	name string
	val  xdm.Sequence
	next *frame
}

// context is the dynamic evaluation context.
type context struct {
	eng    *Engine
	funcs  map[string]*xq.FuncDecl
	vars   *frame
	item   xdm.Item // context item; nil when absent
	pos    int      // 1-based context position within the step's input
	size   int      // context size
	static StaticContext
	// stop, when non-nil, is the shared deadline check of this evaluation;
	// every derived context carries the same pointer.
	stop *stopCheck
}

func (c *context) bind(name string, val xdm.Sequence) *context {
	nc := *c
	nc.vars = &frame{name: name, val: val, next: c.vars}
	return &nc
}

func (c *context) withItem(it xdm.Item, pos, size int) *context {
	nc := *c
	nc.item, nc.pos, nc.size = it, pos, size
	return &nc
}

func (c *context) lookup(name string) (xdm.Sequence, bool) {
	for f := c.vars; f != nil; f = f.next {
		if f.name == name {
			return f.val, true
		}
	}
	return nil, false
}

// callDeclared evaluates a declared function body with a fresh environment
// containing only its parameters (XQuery functions do not close over the
// caller's variables).
func (c *context) callDeclared(f *xq.FuncDecl, args []xdm.Sequence) (xdm.Sequence, error) {
	nc := &context{eng: c.eng, funcs: c.funcs, static: c.static, stop: c.stop}
	for i, p := range f.Params {
		if err := checkSeqType(args[i], p.Type); err != nil {
			return nil, fmt.Errorf("eval: %s($%s): %w", f.Name, p.Name, err)
		}
		nc = nc.bind(p.Name, args[i])
	}
	res, err := nc.eval(f.Body)
	if err != nil {
		return nil, err
	}
	if err := checkSeqType(res, f.Return); err != nil {
		return nil, fmt.Errorf("eval: %s result: %w", f.Name, err)
	}
	return res, nil
}

// callDeclaredSeq is callDeclared with a lazy body: parameters are bound and
// type-checked up front, then the body streams. Shipped XRPC functions
// declare `item()*` results, so the common server path streams unchecked;
// constrained occurrences (exactly-one, optional, plus) materialize because
// they cannot be verified item by item.
func (c *context) callDeclaredSeq(f *xq.FuncDecl, args []xdm.Sequence) (xdm.Seq, error) {
	nc := &context{eng: c.eng, funcs: c.funcs, static: c.static, stop: c.stop}
	for i, p := range f.Params {
		if err := checkSeqType(args[i], p.Type); err != nil {
			return nil, fmt.Errorf("eval: %s($%s): %w", f.Name, p.Name, err)
		}
		nc = nc.bind(p.Name, args[i])
	}
	if f.Return.Occur != xq.OccurStar {
		return func(yield func(xdm.Item) bool) error {
			res, err := nc.eval(f.Body)
			if err != nil {
				return err
			}
			if err := checkSeqType(res, f.Return); err != nil {
				return fmt.Errorf("eval: %s result: %w", f.Name, err)
			}
			for _, it := range res {
				if !yield(it) {
					return nil
				}
			}
			return nil
		}, nil
	}
	body := nc.evalSeq(f.Body)
	if f.Return.Item == "item()" || f.Return.Item == "" {
		return body, nil
	}
	return func(yield func(xdm.Item) bool) error {
		var typeErr error
		err := body(func(it xdm.Item) bool {
			if !itemMatches(it, f.Return.Item) {
				typeErr = fmt.Errorf("eval: %s result: item %v does not match type %s", f.Name, it, f.Return.Item)
				return false
			}
			return yield(it)
		})
		if err != nil {
			return err
		}
		return typeErr
	}, nil
}

// checkSeqType enforces occurrence and a light item-type check.
func checkSeqType(s xdm.Sequence, t xq.SeqType) error {
	switch t.Occur {
	case xq.OccurOne:
		if t.Item == "empty-sequence()" {
			if len(s) != 0 {
				return fmt.Errorf("expected empty-sequence(), got %d items", len(s))
			}
			return nil
		}
		if len(s) != 1 {
			return fmt.Errorf("expected exactly one %s, got %d items", t.Item, len(s))
		}
	case xq.OccurOptional:
		if len(s) > 1 {
			return fmt.Errorf("expected at most one %s, got %d items", t.Item, len(s))
		}
	case xq.OccurPlus:
		if len(s) == 0 {
			return fmt.Errorf("expected at least one %s, got empty sequence", t.Item)
		}
	}
	for _, it := range s {
		if !itemMatches(it, t.Item) {
			return fmt.Errorf("item %v does not match type %s", it, t.Item)
		}
	}
	return nil
}

func itemMatches(it xdm.Item, itemType string) bool {
	switch itemType {
	case "item()", "":
		return true
	case "empty-sequence()":
		return false
	}
	n, isNode := it.(*xdm.Node)
	switch itemType {
	case "node()":
		return isNode
	case "element()":
		return isNode && n.Kind == xdm.ElementNode
	case "attribute()":
		return isNode && n.Kind == xdm.AttributeNode
	case "text()":
		return isNode && n.Kind == xdm.TextNode
	case "document-node()", "document()":
		return isNode && n.Kind == xdm.DocumentNode
	case "boolean()", "xs:boolean":
		a, isA := it.(xdm.Atomic)
		return isA && a.T == xdm.TBoolean
	}
	if isNode {
		return false
	}
	a := it.(xdm.Atomic)
	if at, ok := xdm.ParseAtomType(itemType); ok {
		if at == xdm.TDouble && a.T == xdm.TInteger {
			return true // numeric promotion
		}
		if at == xdm.TString && a.T == xdm.TUntyped {
			return true
		}
		return a.T == at
	}
	return false
}
