package eval

import (
	stdcontext "context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"distxq/internal/xdm"
	"distxq/internal/xq"
)

// constructorSeq numbers constructed trees; each element constructor creates
// a fresh document with an artificial URI, exactly the doc(vi::vi) treatment
// of §IV.
var constructorSeq atomic.Uint64

func newConstructedURI() string {
	return fmt.Sprintf("constructed://%d", constructorSeq.Add(1))
}

func (c *context) eval(e xq.Expr) (xdm.Sequence, error) {
	if err := c.stop.check(); err != nil {
		return nil, err
	}
	switch v := e.(type) {
	case nil:
		return xdm.EmptySequence, nil
	case *xq.Literal:
		return xdm.Singleton(v.Val), nil
	case *xq.VarRef:
		val, ok := c.lookup(v.Name)
		if !ok {
			return nil, fmt.Errorf("eval: unbound variable $%s", v.Name)
		}
		return val, nil
	case *xq.ContextItem:
		if c.item == nil {
			return nil, fmt.Errorf("eval: context item is undefined")
		}
		return xdm.Singleton(c.item), nil
	case *xq.RootExpr:
		n, ok := c.item.(*xdm.Node)
		if !ok {
			return nil, fmt.Errorf("eval: '/' requires a node context item")
		}
		return xdm.Singleton(n.RootNode()), nil
	case *xq.SeqExpr:
		out := xdm.Sequence{}
		for _, it := range v.Items {
			s, err := c.eval(it)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case *xq.ForExpr:
		return c.evalFor(v)
	case *xq.LetExpr:
		bound, err := c.eval(v.Bind)
		if err != nil {
			return nil, err
		}
		return c.bind(v.Var, bound).eval(v.Return)
	case *xq.IfExpr:
		cond, err := c.eval(v.Cond)
		if err != nil {
			return nil, err
		}
		b, ok := cond.EffectiveBoolean()
		if !ok {
			return nil, fmt.Errorf("eval: invalid effective boolean value in if condition")
		}
		if b {
			return c.eval(v.Then)
		}
		return c.eval(v.Else)
	case *xq.QuantifiedExpr:
		return c.evalQuantified(v)
	case *xq.TypeswitchExpr:
		return c.evalTypeswitch(v)
	case *xq.LogicExpr:
		return c.evalLogic(v)
	case *xq.CompareExpr:
		return c.evalCompare(v)
	case *xq.ArithExpr:
		return c.evalArith(v)
	case *xq.UnaryExpr:
		s, err := c.eval(v.Operand)
		if err != nil {
			return nil, err
		}
		atoms := s.Atomize()
		if len(atoms) == 0 {
			return xdm.EmptySequence, nil
		}
		if len(atoms) != 1 {
			return nil, fmt.Errorf("eval: unary minus over a sequence")
		}
		a := atoms[0]
		if a.T == xdm.TInteger {
			return xdm.Singleton(xdm.NewInteger(-a.I)), nil
		}
		return xdm.Singleton(xdm.NewDouble(-a.Number())), nil
	case *xq.NodeSetExpr:
		return c.evalNodeSet(v)
	case *xq.PathExpr:
		return c.evalPath(v)
	case *xq.ElemConstructor:
		n, err := c.constructElement(v)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(n), nil
	case *xq.AttrConstructor:
		n, err := c.constructAttribute(v)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(n), nil
	case *xq.TextConstructor:
		s, err := c.eval(v.Content)
		if err != nil {
			return nil, err
		}
		txt := xdm.NewText(joinAtoms(s))
		d := xdm.NewDocument(newConstructedURI())
		d.Root.AppendChild(txt)
		d.Freeze()
		return xdm.Singleton(txt), nil
	case *xq.DocConstructor:
		s, err := c.eval(v.Content)
		if err != nil {
			return nil, err
		}
		d := xdm.NewDocument(newConstructedURI())
		if err := appendContent(d.Root, s); err != nil {
			return nil, err
		}
		d.Freeze()
		return xdm.Singleton(d.Root), nil
	case *xq.FunCall:
		return c.evalFunCall(v)
	case *xq.ExecuteAt:
		return nil, fmt.Errorf("eval: unnormalized execute-at expression (call xq.Normalize first)")
	case *xq.XRPCExpr:
		return c.evalXRPC(v)
	}
	return nil, fmt.Errorf("eval: unsupported expression %T", e)
}

func (c *context) evalFor(v *xq.ForExpr) (xdm.Sequence, error) {
	in, err := c.eval(v.In)
	if err != nil {
		return nil, err
	}
	// Bulk RPC: a for-loop whose body is exactly a remote call with a
	// loop-invariant target ships all iterations in one message exchange.
	// A target that varies per iteration instead scatter-gathers: one Bulk
	// RPC per distinct destination peer, dispatched concurrently.
	if x, ok := v.Return.(*xq.XRPCExpr); ok && len(v.OrderBy) == 0 && c.eng.Remote != nil {
		if free := xq.FreeVars(x.Target); !free[v.Var] {
			return c.evalBulk(v, x, in)
		}
		return c.evalScatter(v, x, in)
	}
	// Hoist loop-invariant comparison operands: evaluating them once instead
	// of per iteration is the interpreter's stand-in for the loop-lifting
	// a compiling engine (Pathfinder) performs. Only applied to loops with
	// enough iterations to amortize the rewrite.
	ret := v.Return
	if len(in) > 4 {
		hoisted, bindings := hoistInvariantOperands(ret, v.Var)
		if len(bindings) > 0 {
			ret = hoisted
			for _, b := range bindings {
				val, err := c.eval(b.expr)
				if err != nil {
					return nil, err
				}
				c = c.bind(b.name, val)
			}
		}
	}
	type iteration struct {
		res  xdm.Sequence
		keys []xdm.Atomic
	}
	iters := make([]iteration, 0, len(in))
	for _, it := range in {
		ic := c.bind(v.Var, xdm.Singleton(it))
		var keys []xdm.Atomic
		for _, spec := range v.OrderBy {
			ks, err := ic.eval(spec.Key)
			if err != nil {
				return nil, err
			}
			atoms := ks.Atomize()
			if len(atoms) > 1 {
				return nil, fmt.Errorf("eval: order by key is a sequence")
			}
			key := xdm.NewString("") // empty key sorts first
			if len(atoms) == 1 {
				key = atoms[0]
			}
			keys = append(keys, key)
		}
		res, err := ic.eval(ret)
		if err != nil {
			return nil, err
		}
		iters = append(iters, iteration{res: res, keys: keys})
	}
	if len(v.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(iters, func(i, j int) bool {
			for k, spec := range v.OrderBy {
				cmp, ok := xdm.CompareAtomics(iters[i].keys[k], iters[j].keys[k])
				if !ok {
					sortErr = fmt.Errorf("eval: order by keys are not comparable")
					return false
				}
				if cmp == 0 {
					continue
				}
				if spec.Descending {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	out := xdm.Sequence{}
	for _, it := range iters {
		out = append(out, it.res...)
	}
	return out, nil
}

// evalBulk performs one bulk RPC for all iterations of the loop.
func (c *context) evalBulk(v *xq.ForExpr, x *xq.XRPCExpr, in xdm.Sequence) (xdm.Sequence, error) {
	if len(in) == 0 {
		return xdm.EmptySequence, nil
	}
	targetSeq, err := c.eval(x.Target)
	if err != nil {
		return nil, err
	}
	target, err := singletonString(targetSeq, "execute at target")
	if err != nil {
		return nil, err
	}
	iterations := make([][]xdm.Sequence, 0, len(in))
	for _, it := range in {
		ic := c.bind(v.Var, xdm.Singleton(it))
		params := make([]xdm.Sequence, len(x.Params))
		for i, p := range x.Params {
			val, ok := ic.lookup(p.Ref)
			if !ok {
				return nil, fmt.Errorf("eval: XRPC parameter references unbound $%s", p.Ref)
			}
			params[i] = val
		}
		iterations = append(iterations, params)
	}
	c.eng.mu.Lock()
	c.eng.Stats.BulkCalls++
	c.eng.mu.Unlock()
	results, err := c.eng.Remote.CallRemoteBulk(target, x, iterations)
	if err != nil {
		return nil, err
	}
	if len(results) != len(iterations) {
		return nil, fmt.Errorf("eval: bulk RPC returned %d results for %d calls", len(results), len(iterations))
	}
	out := xdm.Sequence{}
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// evalScatter executes a for-loop whose body is a remote call with a target
// that varies per iteration (`for $p in $peers return execute at $p {...}`).
// The target is evaluated per iteration, iterations are partitioned by
// destination peer (batches ordered by each peer's first appearance in the
// loop), one Bulk RPC per distinct peer is dispatched — concurrently when
// the RemoteCaller implements ScatterCaller — and the per-iteration results
// are reassembled in original loop order. Per-peer failures surface
// deterministically: the error of the batch whose peer appeared first in the
// loop wins, independent of goroutine scheduling.
func (c *context) evalScatter(v *xq.ForExpr, x *xq.XRPCExpr, in xdm.Sequence) (xdm.Sequence, error) {
	if len(in) == 0 {
		return xdm.EmptySequence, nil
	}
	batchOf := map[string]int{}
	var batches []ScatterBatch
	var indices [][]int // original iteration index per batch entry
	for i, it := range in {
		ic := c.bind(v.Var, xdm.Singleton(it))
		targetSeq, err := ic.eval(x.Target)
		if err != nil {
			return nil, err
		}
		target, err := singletonString(targetSeq, "execute at target")
		if err != nil {
			return nil, err
		}
		params := make([]xdm.Sequence, len(x.Params))
		for pi, p := range x.Params {
			val, ok := ic.lookup(p.Ref)
			if !ok {
				return nil, fmt.Errorf("eval: XRPC parameter references unbound $%s", p.Ref)
			}
			params[pi] = val
		}
		b, seen := batchOf[target]
		if !seen {
			b = len(batches)
			batchOf[target] = b
			batches = append(batches, ScatterBatch{Target: target, Replicas: c.eng.replicasFor(x, target)})
			indices = append(indices, nil)
		}
		batches[b].Iterations = append(batches[b].Iterations, params)
		indices[b] = append(indices[b], i)
	}
	if sc, ok := c.eng.Remote.(StreamCaller); ok {
		c.eng.mu.Lock()
		c.eng.Stats.BulkCalls += len(batches)
		c.eng.Stats.ScatterWaves++
		c.eng.Stats.StreamedWaves++
		c.eng.mu.Unlock()
		return c.gatherStreamed(sc, x, batches, indices, len(in))
	}
	results := make([][]xdm.Sequence, len(batches))
	errs := make([]error, len(batches))
	if sc, ok := c.eng.Remote.(ScatterCaller); ok {
		c.eng.mu.Lock()
		c.eng.Stats.BulkCalls += len(batches)
		c.eng.Stats.ScatterWaves++
		c.eng.mu.Unlock()
		results, errs = sc.CallRemoteScatter(x, batches)
		if len(results) != len(batches) || len(errs) != len(batches) {
			return nil, fmt.Errorf("eval: scatter dispatch returned %d results / %d errors for %d batches",
				len(results), len(errs), len(batches))
		}
	} else {
		for b, batch := range batches {
			c.eng.mu.Lock()
			c.eng.Stats.BulkCalls++
			c.eng.mu.Unlock()
			results[b], errs[b] = c.eng.Remote.CallRemoteBulk(batch.Target, x, batch.Iterations)
			if errs[b] != nil {
				break // earlier batches succeeded, so this error wins anyway
			}
		}
	}
	// The error of the batch whose peer appeared first in the loop wins —
	// unless that error is only the echo of the dispatcher cancelling the
	// lane because a later batch genuinely failed: then the genuine failure
	// (the first one in batch order) is the deterministic winner.
	errB := -1
	for b, err := range errs {
		if err == nil {
			continue
		}
		if errB < 0 {
			errB = b
		}
		if !errors.Is(err, stdcontext.Canceled) {
			errB = b
			break
		}
	}
	if errB >= 0 {
		return nil, fmt.Errorf("eval: scatter to %s: %w", batches[errB].Target, errs[errB])
	}
	perIter := make([]xdm.Sequence, len(in))
	for b := range batches {
		if len(results[b]) != len(batches[b].Iterations) {
			return nil, fmt.Errorf("eval: bulk RPC to %s returned %d results for %d calls",
				batches[b].Target, len(results[b]), len(batches[b].Iterations))
		}
		for k, res := range results[b] {
			perIter[indices[b][k]] = res
		}
	}
	out := xdm.Sequence{}
	for _, r := range perIter {
		out = append(out, r...)
	}
	return out, nil
}

// gatherStreamed consumes a streamed scatter dispatch: one bounded chunk
// channel per batch, drained in batch order — the same order the dispatcher
// admits lanes into its pool, so the lane being drained is always running
// and a lane blocked on its full buffer can never starve it. Chunks are
// decoded and placed into their loop positions as they arrive, overlapping
// still-running peers with local processing of finished lanes; beyond the
// accumulating result itself the originator holds only the in-flight
// chunks of each lane's bounded buffer.
//
// Errors surface deterministically as the first failing batch in batch
// order — the rule of the gather-whole path — because every earlier lane
// was drained to completion before the failing one was read.
func (c *context) gatherStreamed(sc StreamCaller, x *xq.XRPCExpr, batches []ScatterBatch, indices [][]int, total int) (xdm.Sequence, error) {
	lanes, cancel := sc.CallRemoteScatterStream(x, batches)
	defer cancel()
	if len(lanes) != len(batches) {
		return nil, fmt.Errorf("eval: streamed scatter returned %d lanes for %d batches", len(lanes), len(batches))
	}
	perIter := make([]xdm.Sequence, total)
	for b := range lanes {
		expect := len(batches[b].Iterations)
		cur, seen := 0, false
		for chunk := range lanes[b] {
			if chunk.Err != nil {
				return nil, fmt.Errorf("eval: scatter to %s: %w", batches[b].Target, chunk.Err)
			}
			switch {
			case chunk.Iteration == cur:
				seen = true
			case chunk.Iteration == cur+1 && seen:
				cur++
			case chunk.Iteration > cur:
				return nil, fmt.Errorf("eval: scatter to %s: stream skipped iteration %d",
					batches[b].Target, cur)
			default:
				return nil, fmt.Errorf("eval: scatter to %s: stream delivered iteration %d after %d",
					batches[b].Target, chunk.Iteration, cur)
			}
			if chunk.Iteration >= expect {
				return nil, fmt.Errorf("eval: scatter to %s: stream delivered iteration %d of %d",
					batches[b].Target, chunk.Iteration, expect)
			}
			i := indices[b][chunk.Iteration]
			perIter[i] = append(perIter[i], chunk.Items...)
		}
		if !seen || cur != expect-1 {
			return nil, fmt.Errorf("eval: scatter to %s: stream ended after iteration %d of %d",
				batches[b].Target, cur, expect)
		}
	}
	out := xdm.Sequence{}
	for _, r := range perIter {
		out = append(out, r...)
	}
	return out, nil
}

func (c *context) evalXRPC(x *xq.XRPCExpr) (xdm.Sequence, error) {
	if c.eng.Remote == nil {
		return nil, fmt.Errorf("eval: no remote caller configured for execute at")
	}
	targetSeq, err := c.eval(x.Target)
	if err != nil {
		return nil, err
	}
	target, err := singletonString(targetSeq, "execute at target")
	if err != nil {
		return nil, err
	}
	params := make([]xdm.Sequence, len(x.Params))
	for i, p := range x.Params {
		val, ok := c.lookup(p.Ref)
		if !ok {
			return nil, fmt.Errorf("eval: XRPC parameter references unbound $%s", p.Ref)
		}
		params[i] = val
	}
	c.eng.mu.Lock()
	c.eng.Stats.RemoteCalls++
	c.eng.mu.Unlock()
	return c.eng.Remote.CallRemote(target, x, params)
}

func (c *context) evalQuantified(v *xq.QuantifiedExpr) (xdm.Sequence, error) {
	in, err := c.eval(v.In)
	if err != nil {
		return nil, err
	}
	for _, it := range in {
		s, err := c.bind(v.Var, xdm.Singleton(it)).eval(v.Satisfies)
		if err != nil {
			return nil, err
		}
		b, ok := s.EffectiveBoolean()
		if !ok {
			return nil, fmt.Errorf("eval: invalid effective boolean in quantified expression")
		}
		if v.Every && !b {
			return xdm.Singleton(xdm.NewBoolean(false)), nil
		}
		if !v.Every && b {
			return xdm.Singleton(xdm.NewBoolean(true)), nil
		}
	}
	return xdm.Singleton(xdm.NewBoolean(v.Every)), nil
}

func (c *context) evalTypeswitch(v *xq.TypeswitchExpr) (xdm.Sequence, error) {
	op, err := c.eval(v.Operand)
	if err != nil {
		return nil, err
	}
	for _, cs := range v.Cases {
		if checkSeqType(op, cs.Type) == nil {
			cc := c
			if cs.Var != "" {
				cc = c.bind(cs.Var, op)
			}
			return cc.eval(cs.Return)
		}
	}
	cc := c
	if v.DefaultVar != "" {
		cc = c.bind(v.DefaultVar, op)
	}
	return cc.eval(v.Default)
}

func (c *context) evalLogic(v *xq.LogicExpr) (xdm.Sequence, error) {
	l, err := c.eval(v.Left)
	if err != nil {
		return nil, err
	}
	lb, ok := l.EffectiveBoolean()
	if !ok {
		return nil, fmt.Errorf("eval: invalid effective boolean value")
	}
	if v.And && !lb {
		return xdm.Singleton(xdm.NewBoolean(false)), nil
	}
	if !v.And && lb {
		return xdm.Singleton(xdm.NewBoolean(true)), nil
	}
	r, err := c.eval(v.Right)
	if err != nil {
		return nil, err
	}
	rb, ok := r.EffectiveBoolean()
	if !ok {
		return nil, fmt.Errorf("eval: invalid effective boolean value")
	}
	return xdm.Singleton(xdm.NewBoolean(rb)), nil
}

func (c *context) evalCompare(v *xq.CompareExpr) (xdm.Sequence, error) {
	l, err := c.eval(v.Left)
	if err != nil {
		return nil, err
	}
	r, err := c.eval(v.Right)
	if err != nil {
		return nil, err
	}
	if v.Op.IsNodeComp() {
		return nodeCompare(v.Op, l, r)
	}
	return xdm.Singleton(xdm.NewBoolean(generalCompareAtoms(v.Op, l.Atomize(), r.Atomize()))), nil
}

// generalCompareAtoms decides the existential general comparison over
// atomized operands. Equality over larger sequences uses a hash set instead
// of the quadratic pair scan — the distributed semijoin queries of §VII
// compare hundreds of ids. Shared by the tree-walker and the compiled path.
func generalCompareAtoms(op xq.CompOp, la, ra []xdm.Atomic) bool {
	if op == xq.OpEq && len(la) > 4 && len(ra) > 4 {
		return hashedExistsEq(la, ra)
	}
	for _, a := range la {
		for _, b := range ra {
			cmp, ok := xdm.CompareAtomics(a, b)
			if !ok {
				continue // incomparable pair contributes false
			}
			if compareSatisfies(op, cmp) {
				return true
			}
		}
	}
	return false
}

// hashedExistsEq decides ∃a∈la, b∈ra: a eq b using hash sets, preserving the
// promotion rules of CompareAtomics: untyped values compare as strings
// against strings/untypeds and numerically against numerics; strings never
// equal numerics; booleans only equal booleans.
func hashedExistsEq(la, ra []xdm.Atomic) bool {
	strSet := map[string]bool{}     // string values of strings and untypeds
	numNumeric := map[string]bool{} // canonical numbers of numeric atoms
	numUntyped := map[string]bool{} // canonical numbers of parseable untypeds
	boolSet := map[bool]bool{}
	for _, b := range ra {
		switch {
		case b.T == xdm.TBoolean:
			boolSet[b.B] = true
		case b.IsNumeric():
			numNumeric[xdm.FormatDouble(b.Number())] = true
		case b.T == xdm.TUntyped:
			strSet[b.S] = true
			if f := b.Number(); !math.IsNaN(f) {
				numUntyped[xdm.FormatDouble(f)] = true
			}
		default:
			strSet[b.S] = true
		}
	}
	for _, a := range la {
		switch {
		case a.T == xdm.TBoolean:
			if boolSet[a.B] {
				return true
			}
		case a.IsNumeric():
			key := xdm.FormatDouble(a.Number())
			if numNumeric[key] || numUntyped[key] {
				return true
			}
		case a.T == xdm.TUntyped:
			if strSet[a.S] {
				return true
			}
			if f := a.Number(); !math.IsNaN(f) && numNumeric[xdm.FormatDouble(f)] {
				return true
			}
		default:
			if strSet[a.S] {
				return true
			}
		}
	}
	return false
}

func compareSatisfies(op xq.CompOp, cmp int) bool {
	switch op {
	case xq.OpEq:
		return cmp == 0
	case xq.OpNe:
		return cmp != 0
	case xq.OpLt:
		return cmp < 0
	case xq.OpLe:
		return cmp <= 0
	case xq.OpGt:
		return cmp > 0
	case xq.OpGe:
		return cmp >= 0
	}
	return false
}

func nodeCompare(op xq.CompOp, l, r xdm.Sequence) (xdm.Sequence, error) {
	if len(l) == 0 || len(r) == 0 {
		return xdm.EmptySequence, nil
	}
	if len(l) != 1 || len(r) != 1 {
		return nil, fmt.Errorf("eval: node comparison requires singleton operands")
	}
	ln, lok := l[0].(*xdm.Node)
	rn, rok := r[0].(*xdm.Node)
	if !lok || !rok {
		return nil, fmt.Errorf("eval: node comparison requires node operands")
	}
	var b bool
	switch op {
	case xq.OpIs:
		b = ln == rn
	case xq.OpBefore:
		b = xdm.Compare(ln, rn) < 0
	case xq.OpAfter:
		b = xdm.Compare(ln, rn) > 0
	}
	return xdm.Singleton(xdm.NewBoolean(b)), nil
}

func (c *context) evalArith(v *xq.ArithExpr) (xdm.Sequence, error) {
	l, err := c.eval(v.Left)
	if err != nil {
		return nil, err
	}
	r, err := c.eval(v.Right)
	if err != nil {
		return nil, err
	}
	return arithCombine(v.Op, l.Atomize(), r.Atomize())
}

// arithCombine applies one arithmetic operator to atomized operands — the
// scalar kernel shared by the tree-walker and the compiled path, including
// the integer fast path and the exact zero-division faults.
func arithCombine(op xq.ArithOp, la, ra []xdm.Atomic) (xdm.Sequence, error) {
	if len(la) == 0 || len(ra) == 0 {
		return xdm.EmptySequence, nil
	}
	if len(la) != 1 || len(ra) != 1 {
		return nil, fmt.Errorf("eval: arithmetic over sequences")
	}
	a, b := la[0], ra[0]
	bothInt := a.T == xdm.TInteger && b.T == xdm.TInteger
	switch op {
	case xq.OpAdd, xq.OpSub, xq.OpMul, xq.OpMod:
		if bothInt {
			var res int64
			switch op {
			case xq.OpAdd:
				res = a.I + b.I
			case xq.OpSub:
				res = a.I - b.I
			case xq.OpMul:
				res = a.I * b.I
			case xq.OpMod:
				if b.I == 0 {
					return nil, fmt.Errorf("eval: integer mod by zero")
				}
				res = a.I % b.I
			}
			return xdm.Singleton(xdm.NewInteger(res)), nil
		}
		x, y := a.Number(), b.Number()
		var res float64
		switch op {
		case xq.OpAdd:
			res = x + y
		case xq.OpSub:
			res = x - y
		case xq.OpMul:
			res = x * y
		case xq.OpMod:
			res = math.Mod(x, y)
		}
		return xdm.Singleton(xdm.NewDouble(res)), nil
	case xq.OpDiv:
		y := b.Number()
		if y == 0 {
			return nil, fmt.Errorf("eval: division by zero")
		}
		return xdm.Singleton(xdm.NewDouble(a.Number() / y)), nil
	case xq.OpIDiv:
		y := b.Number()
		if y == 0 {
			return nil, fmt.Errorf("eval: integer division by zero")
		}
		return xdm.Singleton(xdm.NewInteger(int64(a.Number() / y))), nil
	}
	return nil, fmt.Errorf("eval: unknown arithmetic operator")
}

func (c *context) evalNodeSet(v *xq.NodeSetExpr) (xdm.Sequence, error) {
	l, err := c.eval(v.Left)
	if err != nil {
		return nil, err
	}
	r, err := c.eval(v.Right)
	if err != nil {
		return nil, err
	}
	return nodeSetCombine(v.Op, l, r)
}

// nodeSetCombine applies one node-set operator to evaluated operands — the
// kernel shared by the tree-walker and the compiled path.
func nodeSetCombine(op xq.SetOp, l, r xdm.Sequence) (xdm.Sequence, error) {
	ln, ok := l.Nodes()
	if !ok {
		return nil, fmt.Errorf("eval: %s over non-node operand", op)
	}
	rn, ok := r.Nodes()
	if !ok {
		return nil, fmt.Errorf("eval: %s over non-node operand", op)
	}
	inRight := map[*xdm.Node]bool{}
	for _, n := range rn {
		inRight[n] = true
	}
	var out []*xdm.Node
	switch op {
	case xq.OpUnion:
		out = append(append(out, ln...), rn...)
	case xq.OpIntersect:
		for _, n := range ln {
			if inRight[n] {
				out = append(out, n)
			}
		}
	case xq.OpExcept:
		for _, n := range ln {
			if !inRight[n] {
				out = append(out, n)
			}
		}
	}
	return xdm.NodeSeq(xdm.SortDocOrder(out)), nil
}

func (c *context) evalFunCall(v *xq.FunCall) (xdm.Sequence, error) {
	args := make([]xdm.Sequence, len(v.Args))
	for i, a := range v.Args {
		s, err := c.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	if f, ok := c.funcs[fmt.Sprintf("%s/%d", v.Name, len(v.Args))]; ok {
		return c.callDeclared(f, args)
	}
	name := strings.TrimPrefix(v.Name, "fn:")
	if bi, ok := builtins[name]; ok {
		if bi.minArgs > len(args) || (bi.maxArgs >= 0 && len(args) > bi.maxArgs) {
			return nil, fmt.Errorf("eval: %s expects %d..%d arguments, got %d",
				v.Name, bi.minArgs, bi.maxArgs, len(args))
		}
		return bi.fn(c, args)
	}
	return nil, fmt.Errorf("eval: unknown function %s#%d", v.Name, len(v.Args))
}

// ------------------------------------------------------------ constructors --

func (c *context) constructElement(v *xq.ElemConstructor) (*xdm.Node, error) {
	name := v.Name
	if v.NameExpr != nil {
		s, err := c.eval(v.NameExpr)
		if err != nil {
			return nil, err
		}
		nm, err := singletonString(s, "element name")
		if err != nil {
			return nil, err
		}
		name = nm
	}
	el := xdm.NewElement(name)
	seenChild := false
	for _, ce := range v.Content {
		if ac, ok := ce.(*xq.AttrConstructor); ok {
			a, err := c.constructAttribute(ac)
			if err != nil {
				return nil, err
			}
			if seenChild {
				return nil, fmt.Errorf("eval: attribute %s constructed after element content", a.Name)
			}
			el.SetAttr(a.Name, a.Text)
			continue
		}
		s, err := c.eval(ce)
		if err != nil {
			return nil, err
		}
		if err := appendContent(el, s); err != nil {
			return nil, err
		}
		if len(s) > 0 {
			seenChild = true
		}
	}
	d := xdm.NewDocument(newConstructedURI())
	d.Root.AppendChild(el)
	d.Freeze()
	return el, nil
}

func (c *context) constructAttribute(v *xq.AttrConstructor) (*xdm.Node, error) {
	name := v.Name
	if v.NameExpr != nil {
		s, err := c.eval(v.NameExpr)
		if err != nil {
			return nil, err
		}
		nm, err := singletonString(s, "attribute name")
		if err != nil {
			return nil, err
		}
		name = nm
	}
	var parts []string
	for _, ve := range v.Value {
		s, err := c.eval(ve)
		if err != nil {
			return nil, err
		}
		parts = append(parts, joinAtoms(s))
	}
	return xdm.NewAttr(name, strings.Join(parts, "")), nil
}

// appendContent copies evaluated content into a parent node under XQuery
// constructor semantics: nodes are deep-copied, adjacent atomics join with a
// single space into one text node, attribute nodes become attributes.
func appendContent(parent *xdm.Node, s xdm.Sequence) error {
	var pendingAtoms []string
	flush := func() {
		if len(pendingAtoms) > 0 {
			parent.AppendChild(xdm.NewText(strings.Join(pendingAtoms, " ")))
			pendingAtoms = nil
		}
	}
	for _, it := range s {
		switch n := it.(type) {
		case xdm.Atomic:
			pendingAtoms = append(pendingAtoms, n.ItemString())
		case *xdm.Node:
			flush()
			switch n.Kind {
			case xdm.AttributeNode:
				if len(parent.Children) > 0 {
					return fmt.Errorf("eval: attribute node after element content")
				}
				parent.SetAttr(n.Name, n.Text)
			case xdm.DocumentNode:
				for _, ch := range n.Children {
					parent.AppendChild(ch.Copy())
				}
			default:
				parent.AppendChild(n.Copy())
			}
		}
	}
	flush()
	return nil
}

func joinAtoms(s xdm.Sequence) string {
	parts := make([]string, 0, len(s))
	for _, a := range s.Atomize() {
		parts = append(parts, a.ItemString())
	}
	return strings.Join(parts, " ")
}

func singletonString(s xdm.Sequence, what string) (string, error) {
	if len(s) != 1 {
		return "", fmt.Errorf("eval: %s must be a single item, got %d", what, len(s))
	}
	return s[0].ItemString(), nil
}

// hoistBinding pairs a fresh internal variable with the invariant expression
// it replaces.
type hoistBinding struct {
	name string
	expr xq.Expr
}

var hoistSeq atomic.Uint64

// hoistInvariantOperands clones body and replaces comparison operands that
// do not depend on loopVar (nor on any variable bound inside body, nor on
// node construction or remote calls) with fresh variable references. The
// returned bindings are evaluated once by the caller. Fresh names contain
// '#', which the query language cannot produce, so capture is impossible.
func hoistInvariantOperands(body xq.Expr, loopVar string) (xq.Expr, []hoistBinding) {
	clone := xq.CloneExpr(body)
	var bindings []hoistBinding
	var visit func(e xq.Expr, bound map[string]bool)
	hoistable := func(e xq.Expr, bound map[string]bool) bool {
		switch e.(type) {
		case *xq.PathExpr, *xq.FunCall:
		default:
			return false
		}
		for name := range xq.FreeVars(e) {
			if name == loopVar || bound[name] {
				return false
			}
		}
		ok := true
		xq.Walk(e, func(sub xq.Expr) bool {
			switch v := sub.(type) {
			case *xq.ElemConstructor, *xq.AttrConstructor, *xq.TextConstructor,
				*xq.DocConstructor, *xq.XRPCExpr, *xq.ExecuteAt:
				ok = false // per-iteration node identity / remote calls
				return false
			case *xq.ContextItem, *xq.RootExpr:
				ok = false // reads the dynamic context item
				return false
			case *xq.PathExpr:
				if v.Input == nil {
					ok = false // relative path: starts at the context item
					return false
				}
			case *xq.FunCall:
				switch strings.TrimPrefix(v.Name, "fn:") {
				case "position", "last":
					ok = false // reads the dynamic focus
					return false
				}
			}
			return true
		})
		return ok
	}
	maybeHoist := func(slot *xq.Expr, bound map[string]bool) {
		if *slot == nil || !hoistable(*slot, bound) {
			return
		}
		name := fmt.Sprintf("#hoist%d", hoistSeq.Add(1))
		bindings = append(bindings, hoistBinding{name: name, expr: *slot})
		*slot = &xq.VarRef{Name: name}
	}
	withBound := func(bound map[string]bool, names ...string) map[string]bool {
		nb := make(map[string]bool, len(bound)+len(names))
		for k := range bound {
			nb[k] = true
		}
		for _, n := range names {
			if n != "" {
				nb[n] = true
			}
		}
		return nb
	}
	visit = func(e xq.Expr, bound map[string]bool) {
		switch v := e.(type) {
		case nil:
			return
		case *xq.CompareExpr:
			maybeHoist(&v.Left, bound)
			maybeHoist(&v.Right, bound)
			visit(v.Left, bound)
			visit(v.Right, bound)
		case *xq.ForExpr:
			visit(v.In, bound)
			inner := withBound(bound, v.Var)
			for _, sp := range v.OrderBy {
				visit(sp.Key, inner)
			}
			visit(v.Return, inner)
		case *xq.LetExpr:
			visit(v.Bind, bound)
			visit(v.Return, withBound(bound, v.Var))
		case *xq.QuantifiedExpr:
			visit(v.In, bound)
			visit(v.Satisfies, withBound(bound, v.Var))
		case *xq.TypeswitchExpr:
			visit(v.Operand, bound)
			for _, cs := range v.Cases {
				visit(cs.Return, withBound(bound, cs.Var))
			}
			visit(v.Default, withBound(bound, v.DefaultVar))
		case *xq.XRPCExpr:
			// Never hoist out of a shipped body: it evaluates on the remote
			// peer, where caller-side hoist bindings do not exist.
			visit(v.Target, bound)
		default:
			for _, ch := range xq.Children(e) {
				visit(ch, bound)
			}
		}
	}
	visit(clone, map[string]bool{})
	if len(bindings) == 0 {
		return body, nil
	}
	return clone, bindings
}
