package eval

import (
	"testing"
	"testing/quick"

	"distxq/internal/xdm"
)

// TestHoistingPreservesSemantics compares a join evaluated with the
// invariant-hoisting path (many iterations) against the plain path (few
// iterations) on equivalent data.
func TestHoistingPreservesSemantics(t *testing.T) {
	docs := mapResolver{
		"ids.xml": `<ids><i>3</i><i>5</i><i>7</i></ids>`,
	}
	// 10 iterations > hoist threshold; 3 iterations below it.
	big := `for $x in (1,2,3,4,5,6,7,8,9,10)
	        return if ($x = doc("ids.xml")//i) then $x else ()`
	small := `for $x in (3,5,7,11)
	          return if ($x = doc("ids.xml")//i) then $x else ()`
	expect(t, docs, big, "3 5 7")
	expect(t, docs, small, "3 5 7")
}

func TestHoistingSkipsConstructors(t *testing.T) {
	// A constructor inside a comparison creates a fresh node per iteration;
	// hoisting it would change node identity semantics. The observable
	// behaviour here: the comparison stays per-iteration and still works.
	expect(t, nil, `count(for $x in (1,2,3,4,5,6) return
	       if ($x = count(<a><b/></a>/b)) then $x else ())`, "1")
}

func TestHoistingSkipsLoopDependentOperands(t *testing.T) {
	expect(t, nil,
		`for $x in (1,2,3,4,5,6) return if ($x * 2 = $x + $x) then "eq" else "ne"`,
		"eq eq eq eq eq eq")
}

func TestHoistingInnerBinderShadowing(t *testing.T) {
	// The right operand references an inner for variable: must not hoist.
	expect(t, nil,
		`for $x in (1,2,3,4,5,6)
		 return count(for $y in (1,2) return if ($x = $y + 0) then $x else ())`,
		"1 1 0 0 0 0")
}

func TestHoistingErrorsSurface(t *testing.T) {
	// The hoisted operand errors: evaluation must fail, not silently skip.
	runErr(t, nil, `for $x in (1,2,3,4,5,6) return if ($x = doc("missing.xml")//i) then 1 else 0`)
}

// TestHashedEqMatchesNaive checks the hash-based existential equality against
// the naive pairwise scan on random atom mixes.
func TestHashedEqMatchesNaive(t *testing.T) {
	mk := func(picks []uint8) []xdm.Atomic {
		out := make([]xdm.Atomic, 0, len(picks))
		for _, p := range picks {
			switch p % 5 {
			case 0:
				out = append(out, xdm.NewInteger(int64(p%7)))
			case 1:
				out = append(out, xdm.NewDouble(float64(p%7)))
			case 2:
				out = append(out, xdm.NewString(string(rune('a'+p%4))))
			case 3:
				out = append(out, xdm.NewUntyped(string(rune('0'+p%7))))
			case 4:
				out = append(out, xdm.NewBoolean(p%2 == 0))
			}
		}
		return out
	}
	naive := func(la, ra []xdm.Atomic) bool {
		for _, a := range la {
			for _, b := range ra {
				if cmp, ok := xdm.CompareAtomics(a, b); ok && cmp == 0 {
					return true
				}
			}
		}
		return false
	}
	f := func(lp, rp []uint8) bool {
		la, ra := mk(lp), mk(rp)
		return hashedExistsEq(la, ra) == naive(la, ra)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGeneralEqLargeSequencesUseHashPath(t *testing.T) {
	// Exercise the hashed path explicitly (both sides above threshold) and
	// check the known answers.
	expect(t, nil, `(1,2,3,4,5,6) = (7,8,9,10,11,6)`, "true")
	expect(t, nil, `(1,2,3,4,5,6) = (7,8,9,10,11,12)`, "false")
	expect(t, nil, `("a","b","c","d","e") = ("x","y","z","w","c")`, "true")
	// Mixed: untyped numeric text matches integers.
	docs := mapResolver{"n.xml": `<n><v>5</v><v>6</v><v>7</v><v>8</v><v>9</v></n>`}
	expect(t, docs, `doc("n.xml")//v = (9,20,30,40,50)`, "true")
	expect(t, docs, `doc("n.xml")//v = (19,20,30,40,50)`, "false")
	// String "5" vs integer 5 is incomparable → false even hashed.
	expect(t, nil, `("5","x","y","z","w") = (5,6,7,8,9)`, "false")
}
