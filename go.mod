module distxq

go 1.22
