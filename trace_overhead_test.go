package distxq_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"distxq/internal/bench"
	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/service"
	"distxq/internal/trace"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xq"
)

// TestTracingOverheadGate is the CI tracing-overhead gate: with tracing
// enabled, the engine-local workload of BenchmarkEngineLocal and the
// service's scatter path must stay within 5% of the tracing-off runtime.
//
// Timing gates are inherently noisy, so the test is opt-in (CI sets
// DISTXQ_OVERHEAD_GATE=1) and forgiving in shape: each leg takes the
// minimum of 3 reps per side, and the gate retries up to 5 trials,
// passing when ANY trial lands under the limit — a machine hiccup fails a
// trial, not the build. A genuine per-span regression fails all five.
func TestTracingOverheadGate(t *testing.T) {
	if os.Getenv("DISTXQ_OVERHEAD_GATE") == "" {
		t.Skip("timing gate: set DISTXQ_OVERHEAD_GATE=1 to run (the CI overhead step does)")
	}
	const (
		trials = 5
		reps   = 3
		limit  = 1.05
	)
	gate := func(t *testing.T, name string, measure func(traced bool) time.Duration) {
		var worst float64
		for trial := 1; trial <= trials; trial++ {
			var off, on time.Duration
			for r := 0; r < reps; r++ {
				if d := measure(false); r == 0 || d < off {
					off = d
				}
				if d := measure(true); r == 0 || d < on {
					on = d
				}
			}
			ratio := float64(on) / float64(off)
			t.Logf("%s trial %d: off=%v on=%v ratio=%.3f", name, trial, off, on, ratio)
			if ratio <= limit {
				return
			}
			if ratio > worst {
				worst = ratio
			}
		}
		t.Errorf("%s: tracing overhead above %.0f%% in all %d trials (worst ratio %.3f)",
			name, (limit-1)*100, trials, worst)
	}

	// Leg 1: the BenchmarkEngineLocal workload — parse and warm once, then
	// pure execution of the cached plan. The traced side evaluates under an
	// active span; the hot path must not open spans per evaluation.
	t.Run("engine-local", func(t *testing.T) {
		cfg := xmark.DefaultConfig()
		cfg.Persons, cfg.Items, cfg.Auctions = 100, 50, 0
		doc := xmark.PeopleDocument(cfg, "xmk.xml")
		q, err := xq.ParseQuery(`count(doc("local-people")//person[descendant::age > 30])`)
		if err != nil {
			t.Fatal(err)
		}
		newEngine := func(traced bool) *eval.Engine {
			eng := eval.NewEngine(eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
				if uri == "local-people" {
					return doc, nil
				}
				return nil, fmt.Errorf("no such document %q", uri)
			}))
			if traced {
				eng.TraceSpan = trace.New(0, "local").Start(0, "query")
			}
			if _, err := eng.Query(q); err != nil {
				t.Fatal(err)
			}
			return eng
		}
		engines := map[bool]*eval.Engine{false: newEngine(false), true: newEngine(true)}
		gate(t, "engine-local", func(traced bool) time.Duration {
			eng := engines[traced]
			start := time.Now()
			for i := 0; i < 50; i++ {
				if _, err := eng.Query(q); err != nil {
					t.Fatal(err)
				}
			}
			return time.Since(start)
		})
	})

	// Leg 2: the service scatter path — the load-smoke shape, where tracing
	// actually opens spans per query (admission, plan, execute, scatter,
	// lanes, attempts) and grafts remote serve spans back in.
	t.Run("service-scatter", func(t *testing.T) {
		f := bench.NewScatterFixture(1<<16, 3)
		services := map[bool]*service.Service{}
		for _, traced := range []bool{false, true} {
			svc := service.New(f.Net, f.Local, core.ByFragment, service.Config{
				Trace: traced, TraceRing: 8,
			})
			// Warm the plan cache so measurement is pure dispatch.
			if _, _, err := svc.Query(f.Query, core.Budget{}); err != nil {
				t.Fatal(err)
			}
			services[traced] = svc
		}
		gate(t, "service-scatter", func(traced bool) time.Duration {
			svc := services[traced]
			start := time.Now()
			for i := 0; i < 30; i++ {
				if _, _, err := svc.Query(f.Query, core.Budget{}); err != nil {
					t.Fatal(err)
				}
			}
			return time.Since(start)
		})
	})
}

// BenchmarkServiceScatterTraced measures the absolute per-query cost of the
// tracing the gate above bounds relatively — run with -benchmem to see the
// span-recording allocations.
func BenchmarkServiceScatterTraced(b *testing.B) {
	for _, mode := range []struct {
		name   string
		traced bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			f := bench.NewScatterFixture(1<<16, 3)
			svc := service.New(f.Net, f.Local, core.ByFragment, service.Config{
				Trace: mode.traced, TraceRing: 8,
			})
			if _, _, err := svc.Query(f.Query, core.Budget{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := svc.Query(f.Query, core.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
