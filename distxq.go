// Package distxq is a from-scratch Go implementation of "Efficient
// Distribution of Full-Fledged XQuery" (Zhang, Tang, Boncz — ICDE 2009): an
// XQuery engine with automatic query decomposition over XRPC function
// shipping, under pass-by-value, pass-by-fragment, and pass-by-projection
// parameter-passing semantics.
//
// The public API is a thin facade over the internal packages. A typical use:
//
//	net := distxq.NewNetwork()
//	a := net.AddPeer("a.example.org")
//	_ = a.LoadXML("depts.xml", `<depts><dept name="hr"/></depts>`)
//	local := net.AddPeer("local")
//	sess := net.NewSession(local, distxq.ByProjection)
//	res, report, err := sess.Query(
//	    `doc("xrpc://a.example.org/depts.xml")//dept/@name`)
//
// Sessions decompose each query per the paper's dependency-graph analysis,
// execute the remote parts on the owning peers over XRPC, and report the
// bandwidth/time metrics the paper's evaluation uses. See DESIGN.md for the
// architecture and internal/bench (driven by bench_test.go and cmd/figures)
// for the reproduced figures.
package distxq

import (
	"strings"

	"distxq/internal/core"
	"distxq/internal/eval"
	"distxq/internal/peer"
	"distxq/internal/xdm"
	"distxq/internal/xmark"
	"distxq/internal/xq"
	"distxq/internal/xrpc"
)

// Strategy selects how queries over remote documents execute.
type Strategy = core.Strategy

// The four execution strategies of the paper's evaluation.
const (
	// DataShipping fetches whole remote documents (the W3C fn:doc model).
	DataShipping = core.DataShipping
	// ByValue ships function parameters/results as deep copies (§II).
	ByValue = core.ByValue
	// ByFragment groups shipped nodes in fragments, preserving identity,
	// order and ancestor relationships within a message (§V).
	ByFragment = core.ByFragment
	// ByProjection additionally prunes messages with runtime XML
	// projection, enabling reverse axes and root()/id() on shipped nodes
	// (§VI).
	ByProjection = core.ByProjection
)

// Network is a federation of XQuery peers (type alias into the engine).
type Network = peer.Network

// Peer is one XQuery engine hosting documents behind an XRPC endpoint.
type Peer = peer.Peer

// Session executes queries from an originating peer under one strategy.
type Session = peer.Session

// Report carries per-query bandwidth and phase-time measurements.
type Report = peer.Report

// ShardMap describes one logical document horizontally partitioned across
// peers; install it on a Session (Session.UseShards) to let the planner
// rewrite queries over the logical URI into concurrent scatter plans.
type ShardMap = core.ShardMap

// ShardDecision records one shard-rewrite outcome on a Report.
type ShardDecision = core.ShardDecision

// ErrUnknownShardPeer is returned when a shard map names a peer absent from
// the federation.
var ErrUnknownShardPeer = core.ErrUnknownShardPeer

// RetryPolicy configures per-lane fault tolerance of scatter dispatch:
// failed lanes re-issue to replicas (ShardMap.Replicas or
// Session.Replicas), straggling ones are hedged after HedgeAfter. Install
// it with Session.UseRetry.
type RetryPolicy = xrpc.RetryPolicy

// Sequence is an XQuery result sequence.
type Sequence = xdm.Sequence

// Item is one member of a result sequence: *Node or Atomic.
type Item = xdm.Item

// Node is an XML node with stable identity and document order.
type Node = xdm.Node

// Atomic is an atomic XQuery value.
type Atomic = xdm.Atomic

// NewNetwork creates an empty federation with an in-process transport and
// the paper's 1 Gb/s LAN cost model.
func NewNetwork() *Network { return peer.NewNetwork() }

// Serialize renders a result sequence as text: nodes as XML, atomics via
// their lexical form, space separated.
func Serialize(s Sequence) string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch v := it.(type) {
		case *xdm.Node:
			_ = xdm.Serialize(&sb, v)
		case xdm.Atomic:
			sb.WriteString(v.ItemString())
		}
	}
	return sb.String()
}

// ParseQuery parses XQuery source text without executing it.
func ParseQuery(src string) error {
	_, err := xq.ParseQuery(src)
	return err
}

// ExplainDecomposition parses and decomposes a query under the strategy and
// returns the rewritten query text with `execute at` annotations — useful to
// inspect what would run where.
func ExplainDecomposition(src string, strat Strategy) (string, error) {
	q, err := xq.ParseQuery(src)
	if err != nil {
		return "", err
	}
	plan, err := core.Decompose(q, strat, core.DefaultOptions())
	if err != nil {
		return "", err
	}
	return xq.PrintQuery(plan.Query), nil
}

// LocalEngine returns a standalone (non-distributed) XQuery engine over an
// in-memory map of URI → XML text, for quick local evaluation.
func LocalEngine(docs map[string]string) *eval.Engine {
	return eval.NewEngine(eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
		return xdm.ParseString(docs[uri], uri)
	}))
}

// XMarkConfig configures the XMark-style data generator.
type XMarkConfig = xmark.Config

// XMarkPeople generates the site/people benchmark document.
func XMarkPeople(c XMarkConfig, uri string) *xdm.Document { return xmark.PeopleDocument(c, uri) }

// XMarkPeopleShard generates one horizontal partition of the people
// document (person i lives on shard i%shards), for multi-peer federations.
func XMarkPeopleShard(c XMarkConfig, shard, shards int, uri string) *xdm.Document {
	return xmark.PeopleShardDocument(c, shard, shards, uri)
}

// ScatterQuery returns the multi-peer scatter-gather query over a sharded
// people federation: `for $p in $peers return execute at $p {...}`, which
// the engine dispatches as one concurrent Bulk RPC per peer.
func ScatterQuery(peers []string) string { return xmark.ScatterQuery(peers) }

// XMarkPeopleShardMap registers a sharded people federation as the logical
// document XMarkLogicalPeopleURI for the shard-aware planner.
func XMarkPeopleShardMap(peers []string) ShardMap { return xmark.PeopleShardMap(peers) }

// XMarkLogicalPeopleURI is the logical URI of the sharded people document.
const XMarkLogicalPeopleURI = xmark.LogicalPeopleURI

// LogicalScatterQuery states the scatter workload against the logical people
// document; the shard-aware planner synthesizes the `execute at` loop.
func LogicalScatterQuery() string { return xmark.LogicalScatterQuery() }

// XMarkAuctions generates the site/open_auctions benchmark document.
func XMarkAuctions(c XMarkConfig, uri string) *xdm.Document { return xmark.AuctionsDocument(c, uri) }

// XMarkDefaultConfig returns the default generator configuration.
func XMarkDefaultConfig() XMarkConfig { return xmark.DefaultConfig() }

// BenchmarkQuery returns the §VII evaluation query over two peers.
func BenchmarkQuery(peer1, peer2 string) string { return xmark.BenchmarkQuery(peer1, peer2) }
