package main

// Machine-readable benchmark output (-json): every figure that produces a
// timing row also feeds a flat point list, written as one JSON document so
// CI can archive a trajectory of BENCH_scatter.json files across commits.

import (
	"encoding/json"
	"fmt"
	"os"

	"distxq/internal/bench"
)

// benchPoint is one metric point; zero-valued fields are omitted so a
// scatter point carries ns/op while a load point carries QPS and quantiles.
type benchPoint struct {
	Fig         string  `json:"fig"`
	Label       string  `json:"label"`
	NSPerOp     int64   `json:"ns_per_op,omitempty"`
	P50NS       int64   `json:"p50_ns,omitempty"`
	P99NS       int64   `json:"p99_ns,omitempty"`
	RejectP99NS int64   `json:"reject_p99_ns,omitempty"`
	QPS         float64 `json:"qps,omitempty"`
	OfferedQPS  float64 `json:"offered_qps,omitempty"`
	ShedRate    float64 `json:"shed_rate,omitempty"`
	Hedges      int64   `json:"hedges,omitempty"`
}

type benchReport struct {
	Schema string       `json:"schema"`
	Points []benchPoint `json:"points"`
}

// jsonSink accumulates points while figures run and writes them at exit.
type jsonSink struct {
	report benchReport
}

func newJSONSink() *jsonSink {
	return &jsonSink{report: benchReport{Schema: "distxq/bench/v1"}}
}

func (s *jsonSink) addScatter(size int64, rows []bench.ScatterRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points, benchPoint{
			Fig:     "scatter",
			Label:   fmt.Sprintf("%dB/%dpeers", size, r.Peers),
			NSPerOp: r.MaxPeerNS,
		})
	}
}

func (s *jsonSink) addIncremental(rows []bench.IncRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points,
			benchPoint{
				Fig:     "incremental",
				Label:   fmt.Sprintf("%dB/eager", r.DocBytes),
				NSPerOp: r.EagerFirstNS,
			},
			benchPoint{
				Fig:     "incremental",
				Label:   fmt.Sprintf("%dB/incremental", r.DocBytes),
				NSPerOp: r.IncFirstNS,
			})
	}
}

func (s *jsonSink) addHedge(rows []bench.HedgeRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points, benchPoint{
			Fig:    "hedge",
			Label:  fmt.Sprintf("after=%dns", r.HedgeAfterNS),
			P50NS:  r.HedgedP50NS,
			P99NS:  r.HedgedP99NS,
			Hedges: int64(r.Hedges),
		})
	}
}

func (s *jsonSink) addTopology(rows []bench.TopologyRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points,
			benchPoint{
				Fig:   "topology",
				Label: r.Churn.Name + "/blind",
				P50NS: r.BlindP50NS,
				P99NS: r.BlindP99NS,
			},
			benchPoint{
				Fig:   "topology",
				Label: r.Churn.Name + "/aware",
				P50NS: r.AwareP50NS,
				P99NS: r.AwareP99NS,
			})
	}
}

func (s *jsonSink) addLoad(rows []bench.LoadRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points, benchPoint{
			Fig:         "load",
			Label:       fmt.Sprintf("offered=%.1fx", r.Multiplier),
			P50NS:       r.P50NS,
			P99NS:       r.P99NS,
			RejectP99NS: r.RejectP99NS,
			QPS:         r.GoodputQPS,
			OfferedQPS:  r.OfferedQPS,
			ShedRate:    r.ShedRate,
			Hedges:      r.Hedges,
		})
	}
}

// readReport parses a benchReport file previously written by -json.
func readReport(path string) (*benchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "distxq/bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, rep.Schema)
	}
	return &rep, nil
}

// checkRegression compares the current run's load points against a baseline
// report: a point regresses when its goodput falls, or its admitted P99
// rises, by more than tolerance (fractional, e.g. 0.25). Baseline points
// missing from the current run count as regressions; extra current points
// are ignored (new sweeps extend the baseline on the next refresh). Returns
// human-readable regression descriptions, empty on pass.
func checkRegression(baseline, current *benchReport, tolerance float64) []string {
	cur := map[string]benchPoint{}
	for _, p := range current.Points {
		if p.Fig == "load" {
			cur[p.Label] = p
		}
	}
	var regressions []string
	for _, b := range baseline.Points {
		if b.Fig != "load" {
			continue
		}
		c, ok := cur[b.Label]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("load %s: point missing from current run", b.Label))
			continue
		}
		if b.QPS > 0 && c.QPS < b.QPS*(1-tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("load %s: goodput %.1f QPS is more than %.0f%% below baseline %.1f",
					b.Label, c.QPS, tolerance*100, b.QPS))
		}
		if b.P99NS > 0 && c.P99NS > int64(float64(b.P99NS)*(1+tolerance)) {
			regressions = append(regressions,
				fmt.Sprintf("load %s: admitted P99 %dns is more than %.0f%% above baseline %dns",
					b.Label, c.P99NS, tolerance*100, b.P99NS))
		}
	}
	return regressions
}

func (s *jsonSink) marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s.report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *jsonSink) write(path string) error {
	b, err := s.marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
