package main

// Machine-readable benchmark output (-json): every figure that produces a
// timing row also feeds a flat point list, written as one JSON document so
// CI can archive a trajectory of BENCH_scatter.json files across commits.

import (
	"encoding/json"
	"fmt"
	"os"

	"distxq/internal/bench"
)

// benchPoint is one metric point; zero-valued fields are omitted so a
// scatter point carries ns/op while a load point carries QPS and quantiles.
type benchPoint struct {
	Fig         string  `json:"fig"`
	Label       string  `json:"label"`
	NSPerOp     int64   `json:"ns_per_op,omitempty"`
	P50NS       int64   `json:"p50_ns,omitempty"`
	P99NS       int64   `json:"p99_ns,omitempty"`
	RejectP99NS int64   `json:"reject_p99_ns,omitempty"`
	QPS         float64 `json:"qps,omitempty"`
	OfferedQPS  float64 `json:"offered_qps,omitempty"`
	ShedRate    float64 `json:"shed_rate,omitempty"`
	Hedges      int64   `json:"hedges,omitempty"`
}

type benchReport struct {
	Schema string       `json:"schema"`
	Points []benchPoint `json:"points"`
}

// jsonSink accumulates points while figures run and writes them at exit.
type jsonSink struct {
	report benchReport
}

func newJSONSink() *jsonSink {
	return &jsonSink{report: benchReport{Schema: "distxq/bench/v1"}}
}

func (s *jsonSink) addScatter(size int64, rows []bench.ScatterRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points, benchPoint{
			Fig:     "scatter",
			Label:   fmt.Sprintf("%dB/%dpeers", size, r.Peers),
			NSPerOp: r.MaxPeerNS,
		})
	}
}

func (s *jsonSink) addHedge(rows []bench.HedgeRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points, benchPoint{
			Fig:    "hedge",
			Label:  fmt.Sprintf("after=%dns", r.HedgeAfterNS),
			P50NS:  r.HedgedP50NS,
			P99NS:  r.HedgedP99NS,
			Hedges: int64(r.Hedges),
		})
	}
}

func (s *jsonSink) addLoad(rows []bench.LoadRow) {
	for _, r := range rows {
		s.report.Points = append(s.report.Points, benchPoint{
			Fig:         "load",
			Label:       fmt.Sprintf("offered=%.1fx", r.Multiplier),
			P50NS:       r.P50NS,
			P99NS:       r.P99NS,
			RejectP99NS: r.RejectP99NS,
			QPS:         r.GoodputQPS,
			OfferedQPS:  r.OfferedQPS,
			ShedRate:    r.ShedRate,
			Hedges:      r.Hedges,
		})
	}
}

func (s *jsonSink) marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s.report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *jsonSink) write(path string) error {
	b, err := s.marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
