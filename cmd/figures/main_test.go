package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"distxq/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares rendered report output against the checked-in golden
// file, so formatting changes are deliberate (run with -update to accept).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/figures -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestFigScatterGolden locks in the scatter report formatting with synthetic
// (deterministic) measurements — live timings vary, the layout must not.
func TestFigScatterGolden(t *testing.T) {
	rows := []bench.ScatterRow{
		{Peers: 1, Requests: 1, Parallelism: 1, SerialNetNS: 2_500_000, OverlapNetNS: 2_500_000, MaxPeerNS: 2_600_000, Speedup: 1},
		{Peers: 2, Requests: 2, Parallelism: 2, SerialNetNS: 2_600_000, OverlapNetNS: 1_350_000, MaxPeerNS: 1_400_000, Speedup: 1.93},
		{Peers: 4, Requests: 4, Parallelism: 4, SerialNetNS: 2_800_000, OverlapNetNS: 720_000, MaxPeerNS: 760_000, Speedup: 3.89},
		{Peers: 8, Requests: 8, Parallelism: 8, SerialNetNS: 3_100_000, OverlapNetNS: 390_000, MaxPeerNS: 410_000, Speedup: 7.95},
	}
	var buf bytes.Buffer
	bench.PrintFigScatter(&buf, 1<<21, rows)
	checkGolden(t, "fig_scatter.golden", buf.Bytes())
}

// TestFigShardGolden locks in the shard-aware planner report formatting.
func TestFigShardGolden(t *testing.T) {
	rows := []bench.ShardRow{
		{Peers: 1, HandRequests: 1, PlanRequests: 1, HandWaves: 1, PlanWaves: 1, Parallelism: 1, Scattered: true, ResultsEqual: true},
		{Peers: 2, HandRequests: 2, PlanRequests: 2, HandWaves: 1, PlanWaves: 1, Parallelism: 2, Scattered: true, ResultsEqual: true},
		{Peers: 4, HandRequests: 4, PlanRequests: 4, HandWaves: 1, PlanWaves: 1, Parallelism: 4, Scattered: true, ResultsEqual: true},
		{Peers: 8, HandRequests: 8, PlanRequests: 8, HandWaves: 1, PlanWaves: 1, Parallelism: 8, Scattered: true, ResultsEqual: true},
	}
	var buf bytes.Buffer
	bench.PrintFigShard(&buf, 1<<21, rows)
	checkGolden(t, "fig_shard.golden", buf.Bytes())
}

// TestFigShardLive drives the real experiment at a small size: beyond the
// formatting, the planner must actually match the hand-written plan.
func TestFigShardLive(t *testing.T) {
	rows, err := bench.FigShard(1<<16, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Scattered || !r.ResultsEqual {
			t.Fatalf("planner diverged from hand-written scatter: %+v", r)
		}
		if r.HandRequests != r.PlanRequests || r.HandWaves != r.PlanWaves {
			t.Fatalf("dispatch shape differs: %+v", r)
		}
	}
}
