package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"distxq/internal/bench"
	"distxq/internal/trace"
	"distxq/internal/xrpc"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares rendered report output against the checked-in golden
// file, so formatting changes are deliberate (run with -update to accept).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/figures -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestFigScatterGolden locks in the scatter report formatting with synthetic
// (deterministic) measurements — live timings vary, the layout must not.
func TestFigScatterGolden(t *testing.T) {
	rows := []bench.ScatterRow{
		{Peers: 1, Requests: 1, Parallelism: 1, SerialNetNS: 2_500_000, OverlapNetNS: 2_500_000, MaxPeerNS: 2_600_000, Speedup: 1},
		{Peers: 2, Requests: 2, Parallelism: 2, SerialNetNS: 2_600_000, OverlapNetNS: 1_350_000, MaxPeerNS: 1_400_000, Speedup: 1.93},
		{Peers: 4, Requests: 4, Parallelism: 4, SerialNetNS: 2_800_000, OverlapNetNS: 720_000, MaxPeerNS: 760_000, Speedup: 3.89},
		{Peers: 8, Requests: 8, Parallelism: 8, SerialNetNS: 3_100_000, OverlapNetNS: 390_000, MaxPeerNS: 410_000, Speedup: 7.95},
	}
	var buf bytes.Buffer
	bench.PrintFigScatter(&buf, 1<<21, rows)
	checkGolden(t, "fig_scatter.golden", buf.Bytes())
}

// TestFigShardGolden locks in the shard-aware planner report formatting.
func TestFigShardGolden(t *testing.T) {
	rows := []bench.ShardRow{
		{Peers: 1, HandRequests: 1, PlanRequests: 1, HandWaves: 1, PlanWaves: 1, Parallelism: 1, Scattered: true, ResultsEqual: true},
		{Peers: 2, HandRequests: 2, PlanRequests: 2, HandWaves: 1, PlanWaves: 1, Parallelism: 2, Scattered: true, ResultsEqual: true},
		{Peers: 4, HandRequests: 4, PlanRequests: 4, HandWaves: 1, PlanWaves: 1, Parallelism: 4, Scattered: true, ResultsEqual: true},
		{Peers: 8, HandRequests: 8, PlanRequests: 8, HandWaves: 1, PlanWaves: 1, Parallelism: 8, Scattered: true, ResultsEqual: true},
	}
	var buf bytes.Buffer
	bench.PrintFigShard(&buf, 1<<21, rows)
	checkGolden(t, "fig_shard.golden", buf.Bytes())
}

// TestFigStreamGolden locks in the streaming report formatting with
// synthetic (deterministic) measurements.
func TestFigStreamGolden(t *testing.T) {
	rows := []bench.StreamRow{
		{Peers: 1, Chunks: 29, GatherFirstNS: 4_960_000, StreamFirstNS: 2_080_000, FirstSpeedup: 2.38,
			GatherTotalNS: 5_510_000, StreamTotalNS: 4_960_000, TotalSpeedup: 1.11, ResultsEqual: true},
		{Peers: 2, Chunks: 30, GatherFirstNS: 2_150_000, StreamFirstNS: 1_220_000, FirstSpeedup: 1.76,
			GatherTotalNS: 4_800_000, StreamTotalNS: 3_560_000, TotalSpeedup: 1.35, ResultsEqual: true},
		{Peers: 4, Chunks: 32, GatherFirstNS: 1_330_000, StreamFirstNS: 782_000, FirstSpeedup: 1.71,
			GatherTotalNS: 2_600_000, StreamTotalNS: 1_830_000, TotalSpeedup: 1.42, ResultsEqual: true},
		{Peers: 8, Chunks: 32, GatherFirstNS: 885_000, StreamFirstNS: 634_000, FirstSpeedup: 1.40,
			GatherTotalNS: 1_520_000, StreamTotalNS: 1_400_000, TotalSpeedup: 1.09, ResultsEqual: true},
	}
	var buf bytes.Buffer
	bench.PrintFigStream(&buf, 1<<21, rows)
	checkGolden(t, "fig_stream.golden", buf.Bytes())
}

// TestFigStreamLive drives the real streaming experiment at a small size:
// streamed results must be byte-identical to gather-whole, several chunk
// frames must actually flow, the first result must be available before the
// gather-whole baseline has even completed, and the streamed pipeline must
// complete strictly below the gather-whole model of the same lanes.
func TestFigStreamLive(t *testing.T) {
	old := bench.StreamReps
	bench.StreamReps = 1
	defer func() { bench.StreamReps = old }()
	rows, err := bench.FigStream(1<<19, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.ResultsEqual {
			t.Fatalf("streamed result diverged from gather-whole: %+v", r)
		}
		if r.Chunks < int64(r.Peers)+2 {
			t.Fatalf("only %d chunk frames at %d peers — streaming did not chunk", r.Chunks, r.Peers)
		}
		if r.StreamFirstNS >= r.GatherTotalNS {
			t.Fatalf("first streamed result (%dns) not before gather completion (%dns): %+v",
				r.StreamFirstNS, r.GatherTotalNS, r)
		}
		if r.StreamTotalNS >= r.GatherTotalNS {
			t.Fatalf("streamed total %dns not strictly below gather-whole %dns: %+v",
				r.StreamTotalNS, r.GatherTotalNS, r)
		}
	}
}

// TestFigIncrementalGolden locks in the incremental-evaluation report
// formatting with synthetic (deterministic) measurements.
func TestFigIncrementalGolden(t *testing.T) {
	rows := []bench.IncRow{
		{DocBytes: 1 << 19, Items: 310, Chunks: 11, EagerFirstNS: 3_400_000, IncFirstNS: 690_000,
			FirstSpeedup: 4.93, EagerPeakItems: 310, IncPeakItems: 32, ResultsEqual: true},
		{DocBytes: 1 << 20, Items: 640, Chunks: 21, EagerFirstNS: 6_900_000, IncFirstNS: 710_000,
			FirstSpeedup: 9.72, EagerPeakItems: 640, IncPeakItems: 32, ResultsEqual: true},
	}
	var buf bytes.Buffer
	bench.PrintFigIncremental(&buf, rows)
	checkGolden(t, "fig_incremental.golden", buf.Bytes())
}

// TestFigIncrementalLive drives the real single-huge-call experiment: the
// incremental server must hand the originator its first usable result an
// integer factor earlier than the eager baseline, with peak buffering
// bounded by one frame instead of the whole call, and byte-identical
// results.
func TestFigIncrementalLive(t *testing.T) {
	old := bench.StreamReps
	bench.StreamReps = 3
	defer func() { bench.StreamReps = old }()
	rows, err := bench.FigIncremental([]int64{1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.ResultsEqual {
			t.Fatalf("incremental result diverged from eager: %+v", r)
		}
		if r.Chunks < 4 {
			t.Fatalf("only %d chunks — the call is not huge relative to the frame budget: %+v", r.Chunks, r)
		}
		if r.IncPeakItems > int64(xrpc.DefaultChunkItems) {
			t.Fatalf("incremental peak %d items exceeds one frame (%d): %+v",
				r.IncPeakItems, xrpc.DefaultChunkItems, r)
		}
		if r.EagerPeakItems < r.Items {
			t.Fatalf("eager peak %d items below the call's %d — baseline not buffering whole call: %+v",
				r.EagerPeakItems, r.Items, r)
		}
		if r.FirstSpeedup < 2 {
			t.Fatalf("first-result speedup %.2fx below an integer factor: %+v", r.FirstSpeedup, r)
		}
	}
}

// TestFigHedgeGolden locks in the hedged-scatter report. Unlike the timing
// figures, FigHedge is a deterministic netsim-model computation (seeded
// draws, simulated time only), so the golden covers the real numbers, not
// just the layout.
func TestFigHedgeGolden(t *testing.T) {
	cfg := bench.DefaultHedgeConfig()
	rows := bench.FigHedge(cfg, bench.DefaultHedgeAfters)
	var buf bytes.Buffer
	bench.PrintFigHedge(&buf, cfg, rows)
	checkGolden(t, "fig_hedge.golden", buf.Bytes())
}

// TestFigFailoverGolden locks in the live failover report; every printed
// field (retries, winner, result equality) is deterministic even though the
// run is real.
func TestFigFailoverGolden(t *testing.T) {
	row, err := bench.FigFailover(1<<19, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bench.PrintFigFailover(&buf, 1<<19, row)
	checkGolden(t, "fig_failover.golden", buf.Bytes())
}

// TestFigHedgeLive asserts the acceptance property of the tail-tolerance
// figure: on the straggler scenario, hedged P99 is strictly below the
// no-hedge baseline at every swept deadline, hedges actually fire, and the
// live failover run answers byte-identically through the replica.
func TestFigHedgeLive(t *testing.T) {
	rows := bench.FigHedge(bench.DefaultHedgeConfig(), bench.DefaultHedgeAfters)
	if len(rows) == 0 {
		t.Fatal("no hedge rows")
	}
	for _, r := range rows {
		if r.HedgedP99NS >= r.BaseP99NS {
			t.Errorf("hedge-after %dns: hedged P99 %dns not strictly below baseline %dns",
				r.HedgeAfterNS, r.HedgedP99NS, r.BaseP99NS)
		}
		if r.Hedges == 0 {
			t.Errorf("hedge-after %dns: no hedges fired — the scenario exercises nothing", r.HedgeAfterNS)
		}
		if r.Hedges > 0 && r.WastedNS == 0 {
			t.Errorf("hedge-after %dns: hedges fired but no wasted time accounted", r.HedgeAfterNS)
		}
	}
	row, err := bench.FigFailover(1<<18, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !row.ResultsEqual {
		t.Fatalf("failover run diverged from the healthy run: %+v", row)
	}
	if row.Retries < 1 || row.Winner == "" {
		t.Fatalf("failover run did not record the replica win: %+v", row)
	}
}

// TestFigTopologyGolden locks in the churn-routing report. FigTopology is a
// deterministic netsim-model computation (seeded draws, simulated time
// only), so the golden covers the real numbers, not just the layout.
func TestFigTopologyGolden(t *testing.T) {
	cfg := bench.DefaultTopologyConfig()
	rows := bench.FigTopology(cfg, bench.DefaultTopologyChurn)
	var buf bytes.Buffer
	bench.PrintFigTopology(&buf, cfg, rows)
	checkGolden(t, "fig_topology.golden", buf.Bytes())
}

// TestFigTopologyAcceptance asserts the routing claim behind the figure: at
// every churn level with faults present, contention-aware routing beats the
// contention-blind baseline on gather-side P99, the blind baseline pays real
// duplicate bytes and detection stalls, and with no churn the two disciplines
// price essentially alike (the model does not bake in an advantage).
func TestFigTopologyAcceptance(t *testing.T) {
	rows := bench.FigTopology(bench.DefaultTopologyConfig(), bench.DefaultTopologyChurn)
	if len(rows) < 2 {
		t.Fatal("no churn sweep")
	}
	for _, r := range rows {
		if r.Churn.DeadPct == 0 && r.Churn.SlowPct == 0 {
			// Calm: within 5% of each other.
			if diff := r.BlindP99NS - r.AwareP99NS; diff < 0 || diff > r.BlindP99NS/20 {
				t.Errorf("calm level: blind P99 %dns vs aware %dns — disciplines should price alike",
					r.BlindP99NS, r.AwareP99NS)
			}
			continue
		}
		if r.AwareP99NS >= r.BlindP99NS {
			t.Errorf("%s: aware P99 %dns not below blind %dns", r.Churn.Name, r.AwareP99NS, r.BlindP99NS)
		}
		if r.DupBytes == 0 || r.Timeouts == 0 {
			t.Errorf("%s: blind paid no duplicates (%d bytes) or stalls (%d) — scenario exercises nothing",
				r.Churn.Name, r.DupBytes, r.Timeouts)
		}
	}
}

// TestFigTraceGolden locks in the trace-waterfall rendering. SimTraceFig is
// a deterministic netsim-model computation (simulated time only), so the
// golden covers the real span times, not just the layout.
func TestFigTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	bench.PrintFigTrace(&buf, bench.SimTraceFig())
	checkGolden(t, "fig_trace.golden", buf.Bytes())
}

// TestFigTraceChromeGolden locks in the Chrome trace-event export of the
// simulated waterfall — the JSON must stay loadable by chrome://tracing.
func TestFigTraceChromeGolden(t *testing.T) {
	b, err := trace.ChromeTraceJSON(bench.SimTraceFig())
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	checkGolden(t, "fig_trace_chrome.json.golden", b)
}

// TestFigTraceLive asserts the acceptance property of the tracing tentpole:
// one traced query over a killed-primary hedged scatter yields one connected
// span tree holding admission and plan spans, every lane attempt with a
// winner tag on the survivors, server-side spans from at least two live
// peers, zero leaked or double-ended spans, a valid Chrome export, and
// byte-identical results to the untraced healthy run.
func TestFigTraceLive(t *testing.T) {
	row, err := bench.FigTrace(1<<18, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Connected {
		t.Errorf("span tree is not one connected tree: %d spans", row.Spans)
	}
	if row.OpenSpans != 0 || row.DoubleEnds != 0 {
		t.Errorf("span lifecycle invariants violated: open=%d doubleEnds=%d", row.OpenSpans, row.DoubleEnds)
	}
	if !row.ResultsEqual {
		t.Error("traced killed-primary run diverged from the untraced healthy run")
	}
	if row.Winners != row.Peers {
		t.Errorf("winners = %d, want one per lane (%d)", row.Winners, row.Peers)
	}
	if row.Attempts <= row.Peers {
		t.Errorf("attempts = %d over %d lanes — the killed primary forced no failover attempt",
			row.Attempts, row.Peers)
	}
	if row.RemotePeers < 2 {
		t.Errorf("server-side spans from %d peers, want >= 2", row.RemotePeers)
	}
	names := map[string]bool{}
	for _, s := range row.Rec.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"query", "admission", "plan", "execute", "scatter", "lane", "attempt", "serve"} {
		if !names[want] {
			t.Errorf("assembled tree is missing a %q span", want)
		}
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(row.ChromeJSON, &f); err != nil {
		t.Fatalf("live chrome export does not parse: %v", err)
	}
	if len(f.TraceEvents) < row.Spans {
		t.Errorf("chrome export has %d events for %d spans", len(f.TraceEvents), row.Spans)
	}
}

// TestFigLoadGolden locks in the sustained-load report formatting with
// synthetic (deterministic) measurements — live timings vary, the layout
// must not.
func TestFigLoadGolden(t *testing.T) {
	cfg := bench.DefaultLoadConfig()
	rows := []bench.LoadRow{
		{Multiplier: 0.5, OfferedQPS: 100, GoodputQPS: 100, ShedRate: 0, P50NS: 11_000_000, P99NS: 14_000_000},
		{Multiplier: 1, OfferedQPS: 195, GoodputQPS: 182, ShedRate: 0.07, P50NS: 12_800_000, P99NS: 15_700_000, RejectP99NS: 5_700_000},
		{Multiplier: 2, OfferedQPS: 382, GoodputQPS: 185, ShedRate: 0.52, P50NS: 13_900_000, P99NS: 15_800_000, RejectP99NS: 6_100_000},
		{Multiplier: 4, OfferedQPS: 782, GoodputQPS: 184, ShedRate: 0.76, P50NS: 13_400_000, P99NS: 16_000_000, RejectP99NS: 6_100_000},
	}
	var buf bytes.Buffer
	bench.PrintFigLoad(&buf, cfg, rows)
	checkGolden(t, "fig_load.golden", buf.Bytes())
}

// TestFigLoadLive drives a short real sweep and asserts the degradation
// shape: under capacity nothing sheds, past the knee the excess sheds while
// goodput holds (no collapse) and the admitted tail stays bounded.
func TestFigLoadLive(t *testing.T) {
	cfg := bench.DefaultLoadConfig()
	cfg.Window = 150 * time.Millisecond
	cfg.Multipliers = []float64{0.5, 4}
	rows, err := bench.FigLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	under, over := rows[0], rows[1]
	if under.Failed != 0 || over.Failed != 0 {
		t.Fatalf("queries failed outright: under=%d over=%d", under.Failed, over.Failed)
	}
	if under.ShedRate != 0 {
		t.Errorf("shedding below capacity: %v", under.ShedRate)
	}
	if over.ShedRate == 0 {
		t.Error("no shedding at 4x capacity — admission control exercised nothing")
	}
	if under.GoodputQPS > 0 && over.GoodputQPS < under.GoodputQPS/2 {
		t.Errorf("goodput collapsed under overload: %.0f/s vs %.0f/s under capacity",
			over.GoodputQPS, under.GoodputQPS)
	}
	if over.P99NS > 5*under.P99NS {
		t.Errorf("admitted P99 blew up under overload: %dns vs %dns", over.P99NS, under.P99NS)
	}
}

// TestBenchJSON locks the machine-readable (-json) schema: points from each
// contributing figure land with their metric fields and omit the rest.
func TestBenchJSON(t *testing.T) {
	s := newJSONSink()
	s.addScatter(1<<21, []bench.ScatterRow{{Peers: 2, MaxPeerNS: 1_400_000}})
	s.addHedge([]bench.HedgeRow{{HedgeAfterNS: 2_000_000, HedgedP50NS: 1_000_000, HedgedP99NS: 3_000_000, Hedges: 7}})
	s.addLoad([]bench.LoadRow{{Multiplier: 2, OfferedQPS: 382, GoodputQPS: 185, ShedRate: 0.52,
		P50NS: 13_900_000, P99NS: 15_800_000, RejectP99NS: 6_100_000, Hedges: 3}})
	b, err := s.marshal()
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string           `json:"schema"`
		Points []map[string]any `json:"points"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if rep.Schema != "distxq/bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(rep.Points))
	}
	for i, want := range []string{"scatter", "hedge", "load"} {
		if rep.Points[i]["fig"] != want {
			t.Errorf("point %d fig = %v, want %s", i, rep.Points[i]["fig"], want)
		}
	}
	if _, ok := rep.Points[0]["ns_per_op"]; !ok {
		t.Error("scatter point lost ns_per_op")
	}
	if _, ok := rep.Points[0]["qps"]; ok {
		t.Error("scatter point carries a zero qps field — omitempty broken")
	}
	for _, k := range []string{"qps", "offered_qps", "shed_rate", "p99_ns", "reject_p99_ns"} {
		if _, ok := rep.Points[2][k]; !ok {
			t.Errorf("load point lost %s", k)
		}
	}
	checkGolden(t, "bench_scatter.json.golden", b)
}

// TestCheckRegression covers the -check gate's comparison logic: pass
// within tolerance, fail on goodput drops and P99 rises beyond it, fail on
// baseline points missing from the current run, ignore extra current points.
func TestCheckRegression(t *testing.T) {
	baseline := &benchReport{Schema: "distxq/bench/v1", Points: []benchPoint{
		{Fig: "load", Label: "offered=1.0x", QPS: 200, P99NS: 10_000_000},
		{Fig: "load", Label: "offered=2.0x", QPS: 190, P99NS: 12_000_000},
		{Fig: "scatter", Label: "ignored", NSPerOp: 1}, // non-load: not compared
	}}
	mkCurrent := func(qps1 float64, p99ns1 int64, withSecond bool) *benchReport {
		rep := &benchReport{Schema: "distxq/bench/v1", Points: []benchPoint{
			{Fig: "load", Label: "offered=1.0x", QPS: qps1, P99NS: p99ns1},
			{Fig: "load", Label: "offered=9.0x", QPS: 1, P99NS: 1}, // extra: ignored
		}}
		if withSecond {
			rep.Points = append(rep.Points,
				benchPoint{Fig: "load", Label: "offered=2.0x", QPS: 190, P99NS: 12_000_000})
		}
		return rep
	}
	if regs := checkRegression(baseline, mkCurrent(160, 12_000_000, true), 0.25); len(regs) != 0 {
		t.Errorf("within tolerance, got regressions: %v", regs)
	}
	if regs := checkRegression(baseline, mkCurrent(140, 10_000_000, true), 0.25); len(regs) != 1 ||
		!bytes.Contains([]byte(regs[0]), []byte("goodput")) {
		t.Errorf("goodput drop beyond 25%% not flagged: %v", regs)
	}
	if regs := checkRegression(baseline, mkCurrent(200, 13_000_000, true), 0.25); len(regs) != 1 ||
		!bytes.Contains([]byte(regs[0]), []byte("P99")) {
		t.Errorf("P99 rise beyond 25%% not flagged: %v", regs)
	}
	if regs := checkRegression(baseline, mkCurrent(200, 10_000_000, false), 0.25); len(regs) != 1 ||
		!bytes.Contains([]byte(regs[0]), []byte("missing")) {
		t.Errorf("missing baseline point not flagged: %v", regs)
	}
}

// TestReadReportRoundTrip: a -json file written by the sink reads back for
// -check, and foreign schemas are rejected.
func TestReadReportRoundTrip(t *testing.T) {
	s := newJSONSink()
	s.addLoad([]bench.LoadRow{{Multiplier: 1, OfferedQPS: 100, GoodputQPS: 95, P50NS: 1, P99NS: 2}})
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := s.write(path); err != nil {
		t.Fatal(err)
	}
	rep, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 || rep.Points[0].Fig != "load" {
		t.Fatalf("round-trip lost points: %+v", rep)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9","points":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(bad); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestFigShardLive drives the real experiment at a small size: beyond the
// formatting, the planner must actually match the hand-written plan.
func TestFigShardLive(t *testing.T) {
	rows, err := bench.FigShard(1<<16, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Scattered || !r.ResultsEqual {
			t.Fatalf("planner diverged from hand-written scatter: %+v", r)
		}
		if r.HandRequests != r.PlanRequests || r.HandWaves != r.PlanWaves {
			t.Fatalf("dispatch shape differs: %+v", r)
		}
	}
}
