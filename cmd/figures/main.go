// Command figures regenerates the evaluation figures of the paper (§VII):
// Figure 7 (bandwidth usage), Figure 8 (query time breakdown), Figure 9
// (execution time), Figures 10/11 (projection precision and time).
//
// Usage:
//
//	figures [-fig all|7|8|9|10|scatter|shard|stream|incremental|hedge|load|trace|topology] [-size bytes] [-steps n] [-json file] [-check baseline]
//
// -size sets the largest combined document size of the sweep (default 2 MiB;
// the paper used 320 MB on a cluster — larger sizes just take longer).
// -json additionally writes the timing figures' points as one JSON document
// (see cmd/figures/json.go) for CI to archive across commits.
// -check compares this run's load points against a committed baseline file
// and exits nonzero when goodput drops or admitted P99 rises beyond
// -tolerance (default 25%) — the CI perf-regression gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"distxq/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 7, 8, 9, 10 (10 includes 11), scatter, shard, stream, incremental, hedge, load, trace, topology")
	size := flag.Int64("size", 1<<21, "largest combined document size in bytes")
	steps := flag.Int("steps", 5, "number of sizes in the sweep (halving per step)")
	maxPeers := flag.Int("peers", 8, "largest peer count of the scatter sweep (doubling from 1)")
	jsonPath := flag.String("json", "", "also write machine-readable points to this file (e.g. BENCH_scatter.json)")
	checkPath := flag.String("check", "",
		"compare this run's load points against a baseline -json file (e.g. BENCH_baseline.json); exit nonzero on regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.25,
		"fractional regression allowed by -check in goodput (down) and admitted P99 (up)")
	compile := flag.Bool("compile", false,
		"run every engine (peers and originators) through the compiled closure-chain executor")
	traceOut := flag.String("trace-out", "",
		"with -fig trace: also write the live run's span tree as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
	flag.Parse()
	bench.Compile = *compile
	sink := newJSONSink()

	var sizes []int64
	for s, i := *size, 0; i < *steps && s >= 1<<14; i, s = i+1, s/2 {
		sizes = append([]int64{s}, sizes...)
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("7", func() error {
		sweep, err := bench.Fig7Bandwidth(sizes)
		if err != nil {
			return err
		}
		bench.PrintFig7(os.Stdout, sweep)
		return nil
	})
	run("8", func() error {
		rows, err := bench.Fig8Breakdown(*size)
		if err != nil {
			return err
		}
		bench.PrintFig8(os.Stdout, rows)
		return nil
	})
	run("9", func() error {
		sweep, err := bench.Fig9ExecTime(sizes)
		if err != nil {
			return err
		}
		bench.PrintFig9(os.Stdout, sweep)
		return nil
	})
	run("10", func() error {
		rows, err := bench.Fig10and11Projection(sizes)
		if err != nil {
			return err
		}
		bench.PrintFig10and11(os.Stdout, rows)
		return nil
	})
	run("scatter", func() error {
		var counts []int
		for p := 1; p <= *maxPeers; p *= 2 {
			counts = append(counts, p)
		}
		rows, err := bench.FigScatter(*size, counts)
		if err != nil {
			return err
		}
		bench.PrintFigScatter(os.Stdout, *size, rows)
		sink.addScatter(*size, rows)
		return nil
	})
	run("stream", func() error {
		var counts []int
		for p := 1; p <= *maxPeers; p *= 2 {
			counts = append(counts, p)
		}
		rows, err := bench.FigStream(*size, counts)
		if err != nil {
			return err
		}
		bench.PrintFigStream(os.Stdout, *size, rows)
		return nil
	})
	run("incremental", func() error {
		rows, err := bench.FigIncremental(sizes)
		if err != nil {
			return err
		}
		bench.PrintFigIncremental(os.Stdout, rows)
		sink.addIncremental(rows)
		return nil
	})
	run("shard", func() error {
		var counts []int
		for p := 1; p <= *maxPeers; p *= 2 {
			counts = append(counts, p)
		}
		rows, err := bench.FigShard(*size, counts)
		if err != nil {
			return err
		}
		bench.PrintFigShard(os.Stdout, *size, rows)
		return nil
	})
	run("hedge", func() error {
		cfg := bench.DefaultHedgeConfig()
		cfg.Lanes = *maxPeers
		rows := bench.FigHedge(cfg, bench.DefaultHedgeAfters)
		bench.PrintFigHedge(os.Stdout, cfg, rows)
		sink.addHedge(rows)
		fmt.Println()
		fo, err := bench.FigFailover(*size, *maxPeers)
		if err != nil {
			return err
		}
		bench.PrintFigFailover(os.Stdout, *size, fo)
		return nil
	})
	run("trace", func() error {
		// The simulated waterfall is deterministic (netsim time only); the
		// live run below it validates the real assembled tree.
		bench.PrintFigTrace(os.Stdout, bench.SimTraceFig())
		fmt.Println()
		row, err := bench.FigTrace(*size, 4)
		if err != nil {
			return err
		}
		bench.PrintFigTraceRow(os.Stdout, *size, row)
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, row.ChromeJSON, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d spans) — open in chrome://tracing or Perfetto\n",
				*traceOut, row.Spans)
		}
		return nil
	})
	run("topology", func() error {
		cfg := bench.DefaultTopologyConfig()
		cfg.Lanes = *maxPeers
		rows := bench.FigTopology(cfg, bench.DefaultTopologyChurn)
		bench.PrintFigTopology(os.Stdout, cfg, rows)
		sink.addTopology(rows)
		return nil
	})
	run("load", func() error {
		cfg := bench.DefaultLoadConfig()
		rows, err := bench.FigLoad(cfg)
		if err != nil {
			return err
		}
		bench.PrintFigLoad(os.Stdout, cfg, rows)
		sink.addLoad(rows)
		return nil
	})
	if *jsonPath != "" {
		if err := sink.write(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
	if *checkPath != "" {
		baseline, err := readReport(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: -check: %v\n", err)
			os.Exit(1)
		}
		regressions := checkRegression(baseline, &sink.report, *tolerance)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "figures: regression: %s\n", r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "figures: %d regression(s) beyond %.0f%% against %s\n",
				len(regressions), *tolerance*100, *checkPath)
			os.Exit(1)
		}
		fmt.Printf("check: no regressions beyond %.0f%% against %s\n", *tolerance*100, *checkPath)
	}
}
