// Command xmarkgen writes the XMark-style benchmark documents used by the
// evaluation: xmk.xml (site/people + regions) and xmk.auctions.xml
// (site/open_auctions).
//
// Usage:
//
//	xmarkgen [-out dir] [-size bytes] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"distxq/internal/xdm"
	"distxq/internal/xmark"
)

func main() {
	out := flag.String("out", ".", "output directory")
	size := flag.Int64("size", 1<<20, "combined target size in bytes")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	cfg := xmark.ForSize(*size)
	cfg.Seed = *seed
	write := func(name string, d *xdm.Document) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := xdm.Serialize(f, d.Root); err != nil {
			fmt.Fprintf(os.Stderr, "xmarkgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d persons, %d auctions, %d items)\n",
			path, cfg.Persons, cfg.Auctions, cfg.Items)
	}
	write("xmk.xml", xmark.PeopleDocument(cfg, "xmk.xml"))
	write("xmk.auctions.xml", xmark.AuctionsDocument(cfg, "xmk.auctions.xml"))
}
