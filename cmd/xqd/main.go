// Command xqd runs the long-lived federation daemon: a query front end
// holding warm transports to its peers, a decomposed-plan cache, and
// admission control, executing each POSTed query under a per-query
// wall-time budget with adaptive hedging across replicas.
//
// Usage:
//
//	xqd -listen :9090 -doc peer1/depts.xml=./depts.xml \
//	    -replica peer1=rep1 -budget 2s -max-concurrent 8
//
// Endpoints:
//
//	POST /query   query text in the body; X-Xqd-Budget-Ms overrides the
//	              default per-query budget. 200 carries the serialized
//	              result; 503 a shed (overloaded) query; 504 a blown budget.
//	GET  /stats   JSON service counters (admitted, shed, plan hits, ...)
//	              plus per-peer health-tracker state.
//	GET  /metrics Prometheus-style text page unifying service, evaluation,
//	              transport and per-peer health metrics.
//	GET  /debug/traces  recent and slowest query span trees as JSON
//	              (requires -trace).
//	GET  /healthz liveness probe.
//
// -pprof additionally serves net/http/pprof under /debug/pprof/ (off by
// default: the daemon uses its own mux, so pprof's DefaultServeMux
// registration is inert unless wired in).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"distxq"
	"distxq/internal/core"
	"distxq/internal/service"
	"distxq/internal/xrpc"
)

type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func fail(err error) {
	fmt.Fprintf(os.Stderr, "xqd: %v\n", err)
	os.Exit(1)
}

func main() {
	listen := flag.String("listen", ":9090", "listen address")
	strategy := flag.String("strategy", "by-projection",
		"data-shipping | by-value | by-fragment | by-projection")
	var docs repeatable
	flag.Var(&docs, "doc", "peer/name=path of a document hosted in-process (repeatable)")
	var httpPeers repeatable
	flag.Var(&httpPeers, "peer", "name=baseURL of a remote xqpeer daemon (repeatable)")
	var replicaSpecs repeatable
	flag.Var(&replicaSpecs, "replica",
		"peer=replica1,replica2,... — ordered failover replicas of a scatter target (repeatable)")
	budget := flag.Duration("budget", 5*time.Second, "default per-query wall-time budget (0 = unbounded)")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries executing at once (0 = default)")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth beyond capacity (0 = default, <0 = none)")
	queueWait := flag.Duration("queue-wait", 0, "max admission queue wait (0 = default)")
	streamed := flag.Bool("stream", false, "dispatch scatter loops over streaming XRPC")
	chunkItems := flag.Int("chunk-items", 0,
		"result items per streamed response chunk on in-process peers (0 = default)")
	retries := flag.Int("retry-attempts", 0, "max attempts per scatter lane (0 = one per available copy)")
	hedgeAfter := flag.Duration("hedge-after", 20*time.Millisecond,
		"static hedge trigger until the health tracker has observed enough traffic (0 = off)")
	spread := flag.Bool("spread", true, "spread initial lane targets across healthy replicas")
	compile := flag.Bool("compile", false,
		"compile cached plans into the closure-chain executor (one lowering per plan, shared across queries)")
	traced := flag.Bool("trace", false,
		"record a span tree per query, served at /debug/traces")
	traceRing := flag.Int("trace-ring", 0, "recent traces retained (0 = default)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fail(err)
	}
	net := distxq.NewNetwork()
	net.SetChunkItems(*chunkItems)
	peers := map[string]*distxq.Peer{}
	for _, spec := range docs {
		target, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("want peer/name=path, got %q", spec))
		}
		peerName, docName, ok := strings.Cut(target, "/")
		if !ok {
			fail(fmt.Errorf("want peer/name=path, got %q", spec))
		}
		p := peers[peerName]
		if p == nil {
			p = net.AddPeer(peerName)
			peers[peerName] = p
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		if err := p.LoadXML(docName, string(data)); err != nil {
			fail(err)
		}
	}
	for _, spec := range httpPeers {
		name, baseURL, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("want name=baseURL, got %q", spec))
		}
		url := strings.TrimSuffix(baseURL, "/") + "/xrpc"
		net.RouteExternal(name, &xrpc.HTTPTransport{
			URLFor: func(string) string { return url },
		})
	}
	origin := net.AddPeer("local")

	svc := service.New(net, origin, strat, service.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		MaxQueueWait:  *queueWait,
		DefaultBudget: core.Budget{Wall: *budget},
		Streamed:      *streamed,
		Compile:       *compile,
		Trace:         *traced,
		TraceRing:     *traceRing,
	})
	pol := &xrpc.RetryPolicy{
		MaxAttempts:    *retries,
		HedgeAfter:     *hedgeAfter,
		SpreadReplicas: *spread,
	}
	svc.UseRetry(pol)

	replicas := map[string][]string{}
	for _, spec := range replicaSpecs {
		primary, rest, ok := strings.Cut(spec, "=")
		if !ok || rest == "" {
			fail(fmt.Errorf("want peer=replica1,replica2,..., got %q", spec))
		}
		replicas[primary] = strings.Split(rest, ",")
	}
	svc.Replicas = replicas

	// A private mux keeps the surface explicit: importing net/http/pprof
	// registers its handlers on http.DefaultServeMux unconditionally, so
	// serving that mux would expose profiling endpoints regardless of -pprof.
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "query requires POST", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var b core.Budget
		if h := r.Header.Get("X-Xqd-Budget-Ms"); h != "" {
			ms, err := strconv.ParseInt(h, 10, 64)
			if err != nil || ms < 0 {
				http.Error(w, "bad X-Xqd-Budget-Ms", http.StatusBadRequest)
				return
			}
			b = core.Budget{Wall: time.Duration(ms) * time.Millisecond}
		}
		res, _, err := svc.Query(string(body), b)
		switch {
		case err == nil:
			w.Header().Set("Content-Type", "application/xml")
			fmt.Fprintln(w, distxq.Serialize(res))
		case errors.Is(err, xrpc.ErrOverloaded):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, xrpc.ErrDeadlineExceeded):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		default:
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			service.Stats
			Peers map[string]xrpc.PeerHealthState `json:"peers,omitempty"`
		}{svc.Stats(), svc.PeerHealth()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = svc.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if svc.Traces == nil {
			http.Error(w, "tracing disabled (run with -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(svc.Traces.Dump())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Printf("xqd listening on %s (strategy %s, budget %v)\n", *listen, strat, *budget)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fail(err)
	}
}

func parseStrategy(s string) (distxq.Strategy, error) {
	switch s {
	case "data-shipping":
		return distxq.DataShipping, nil
	case "by-value", "pass-by-value":
		return distxq.ByValue, nil
	case "by-fragment", "pass-by-fragment":
		return distxq.ByFragment, nil
	case "by-projection", "pass-by-projection":
		return distxq.ByProjection, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}
