// Command xqpeer runs an XRPC peer daemon: an XQuery engine serving its
// local documents over HTTP POST /xrpc, the wire protocol of the paper.
//
// Usage:
//
//	xqpeer -listen :8080 -doc depts.xml=./data/depts.xml -doc people=./p.xml
//
// Other peers (or cmd/xq) can then decompose queries referencing
// doc("xrpc://host:8080/depts.xml") to this peer.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"distxq/internal/eval"
	"distxq/internal/xdm"
	"distxq/internal/xrpc"
)

type docFlags map[string]string

func (d docFlags) String() string { return fmt.Sprint(map[string]string(d)) }
func (d docFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	chunkItems := flag.Int("chunk-items", 0,
		"result items per streamed response chunk (0 = default)")
	name := flag.String("name", "",
		"peer name stamped on server-side trace spans (default: listen address)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	docs := docFlags{}
	flag.Var(docs, "doc", "name=path of a document to serve (repeatable)")
	flag.Parse()

	store := map[string]*xdm.Document{}
	for name, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xqpeer: %v\n", err)
			os.Exit(1)
		}
		d, err := xdm.ParseString(string(data), name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xqpeer: %s: %v\n", path, err)
			os.Exit(1)
		}
		store[name] = d
		fmt.Printf("serving %s (%d bytes)\n", name, len(data))
	}
	engine := eval.NewEngine(eval.ResolverFunc(func(uri string) (*xdm.Document, error) {
		// Accept both plain names and xrpc://self/name forms.
		name := uri
		if i := strings.LastIndexByte(uri, '/'); strings.HasPrefix(uri, "xrpc://") && i >= 0 {
			name = uri[i+1:]
		}
		if d, ok := store[name]; ok {
			return d, nil
		}
		return nil, fmt.Errorf("no such document %q", uri)
	}))
	peerName := *name
	if peerName == "" {
		peerName = *listen
	}
	srv := &xrpc.Server{Engine: engine, ChunkItems: *chunkItems, Name: peerName}
	// A private mux keeps the surface explicit: importing net/http/pprof
	// registers on http.DefaultServeMux unconditionally, so serving that mux
	// would expose profiling endpoints regardless of -pprof.
	mux := http.NewServeMux()
	mux.Handle("/xrpc", xrpc.NewHTTPHandler(srv))
	// Streaming endpoint: results leave as chunk frames while later calls
	// are still evaluating.
	mux.Handle("/xrpc/stream", xrpc.NewStreamHTTPHandler(srv))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Printf("xqpeer listening on %s\n", *listen)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fmt.Fprintf(os.Stderr, "xqpeer: %v\n", err)
		os.Exit(1)
	}
}
