// Command xq evaluates a distributed XQuery query against an in-process
// federation, or explains how it would be decomposed.
//
// Usage:
//
//	xq [-strategy by-projection] [-doc peer/name=path]... [-explain] 'query'
//	echo 'query' | xq -doc A/students.xml=./students.xml
//
// Documents register as xrpc://peer/name; the query runs at a local
// originator peer under the chosen strategy and the tool prints the result
// plus the transfer report. Remote xqpeer daemons join the federation via
// -peer name=http://host:port — execute-at calls naming them travel over
// HTTP (streamed when -stream is set and the daemon serves /xrpc/stream).
//
// Scatter dispatch becomes fault-tolerant with -replica (ordered failover
// copies per peer), -retry-attempts and -hedge-after: a failed lane
// re-issues to the next replica and a straggling one is hedged, the report
// naming any lane a replica answered.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"distxq"
	"distxq/internal/xrpc"
)

type docFlags []string

func (d *docFlags) String() string     { return strings.Join(*d, ",") }
func (d *docFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	strategy := flag.String("strategy", "by-projection",
		"data-shipping | by-value | by-fragment | by-projection")
	explain := flag.Bool("explain", false, "print the decomposed query instead of executing")
	var docs docFlags
	flag.Var(&docs, "doc", "peer/name=path of a document (repeatable)")
	var shards docFlags
	flag.Var(&shards, "shard",
		"logicalURI=shardPath@recordPath@peer1,peer2,... — register a sharded logical document (repeatable)")
	var httpPeers docFlags
	flag.Var(&httpPeers, "peer",
		"name=baseURL of a remote xqpeer daemon reached over HTTP (repeatable)")
	streamed := flag.Bool("stream", false,
		"dispatch scatter loops over streaming XRPC (chunked result streams)")
	chunkItems := flag.Int("chunk-items", 0,
		"result items per streamed response chunk on in-process peers (0 = default)")
	var replicaSpecs docFlags
	flag.Var(&replicaSpecs, "replica",
		"peer=replica1,replica2,... — ordered failover replicas of a scatter target (repeatable)")
	retries := flag.Int("retry-attempts", 0,
		"max attempts per scatter lane, rotating primary→replicas (0 = one per available copy)")
	hedgeAfter := flag.Duration("hedge-after", 0,
		"hedge a scatter lane to its next replica if unanswered after this duration (0 = off)")
	flag.Parse()

	var src string
	if flag.NArg() > 0 {
		src = strings.Join(flag.Args(), " ")
	} else {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fail(err)
		}
		src = string(data)
	}

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fail(err)
	}
	if *explain {
		out, err := distxq.ExplainDecomposition(src, strat)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}

	net := distxq.NewNetwork()
	net.SetChunkItems(*chunkItems)
	peers := map[string]*distxq.Peer{}
	for _, spec := range docs {
		target, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("want peer/name=path, got %q", spec))
		}
		peerName, docName, ok := strings.Cut(target, "/")
		if !ok {
			fail(fmt.Errorf("want peer/name=path, got %q", spec))
		}
		p := peers[peerName]
		if p == nil {
			p = net.AddPeer(peerName)
			peers[peerName] = p
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		if err := p.LoadXML(docName, string(data)); err != nil {
			fail(err)
		}
	}
	for _, spec := range httpPeers {
		name, baseURL, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("want name=baseURL, got %q", spec))
		}
		url := strings.TrimSuffix(baseURL, "/") + "/xrpc"
		net.RouteExternal(name, &xrpc.HTTPTransport{
			URLFor: func(string) string { return url },
		})
	}
	local := net.AddPeer("local")
	sess := net.NewSession(local, strat)
	sess.Streamed = *streamed
	for _, spec := range shards {
		m, err := parseShardMap(spec)
		if err != nil {
			fail(err)
		}
		sess.UseShards(m)
	}
	for _, spec := range replicaSpecs {
		primary, rest, ok := strings.Cut(spec, "=")
		if !ok || rest == "" {
			fail(fmt.Errorf("want peer=replica1,replica2,..., got %q", spec))
		}
		if sess.Replicas == nil {
			sess.Replicas = map[string][]string{}
		}
		sess.Replicas[primary] = strings.Split(rest, ",")
	}
	if *retries > 0 || *hedgeAfter > 0 || len(sess.Replicas) > 0 {
		sess.Retry = &xrpc.RetryPolicy{MaxAttempts: *retries, HedgeAfter: *hedgeAfter}
	}
	res, rep, err := sess.Query(src)
	if err != nil {
		fail(err)
	}
	fmt.Println(distxq.Serialize(res))
	fmt.Fprintf(os.Stderr, "-- %s: %d B documents + %d B messages in %d exchanges\n",
		strat, rep.DocBytes, rep.MsgBytes, rep.Requests)
	for _, d := range rep.Shards {
		if d.Scattered {
			fmt.Fprintf(os.Stderr, "-- shard rewrite: %s scattered\n", d.Logical)
		} else {
			fmt.Fprintf(os.Stderr, "-- shard rewrite: %s fell back: %s\n", d.Logical, d.Reason)
		}
	}
	if rep.Retries > 0 || rep.Hedges > 0 {
		fmt.Fprintf(os.Stderr, "-- fault tolerance: %d retries, %d hedges\n", rep.Retries, rep.Hedges)
		for target, winner := range rep.WinnerReplica {
			fmt.Fprintf(os.Stderr, "-- lane %s answered by replica %s\n", target, winner)
		}
	}
}

// parseShardMap reads a -shard spec: logicalURI=shardPath@recordPath@peers.
func parseShardMap(spec string) (distxq.ShardMap, error) {
	logical, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return distxq.ShardMap{}, fmt.Errorf("want logicalURI=shardPath@recordPath@peers, got %q", spec)
	}
	parts := strings.SplitN(rest, "@", 3)
	if len(parts) != 3 {
		return distxq.ShardMap{}, fmt.Errorf("want logicalURI=shardPath@recordPath@peers, got %q", spec)
	}
	return distxq.ShardMap{
		Logical:    logical,
		ShardPath:  parts[0],
		RecordPath: parts[1],
		Peers:      strings.Split(parts[2], ","),
	}, nil
}

func parseStrategy(s string) (distxq.Strategy, error) {
	switch s {
	case "data-shipping":
		return distxq.DataShipping, nil
	case "by-value", "pass-by-value":
		return distxq.ByValue, nil
	case "by-fragment", "pass-by-fragment":
		return distxq.ByFragment, nil
	case "by-projection", "pass-by-projection":
		return distxq.ByProjection, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "xq: %v\n", err)
	os.Exit(1)
}
